package core

import (
	"fmt"
	"math"

	"road/internal/apierr"
	"road/internal/graph"
	"road/internal/rnet"
)

// This file holds the CSR hot path: the query-time representation of the
// Route Overlay as flat, int32-indexed arrays. The per-node shortcut trees
// (rnet.TreeNode) are pointer structures built for clarity and for the
// paper's paged storage model; every settled node of every query used to
// chase them. The CSR index flattens each node's tree once into contiguous
// slabs — entries in exactly the order the reference traversal visits
// them, with a skip pointer per entry so a bypass is a single index jump —
// and bakes shortcut distances and live edge weights in, so the inner loop
// of kNN/range/path search touches nothing but these slabs, the dense
// Association Directory arrays and a typed heap. storage.Store is never
// consulted here: it remains only for snapshot persistence and the
// paper-faithful I/O-accounting report mode (Framework-level queries).

// csrEnt flags.
const (
	csrBorder   uint8 = 1 << 0 // node is a border of this Rnet (shortcut slab valid)
	csrChildren uint8 = 1 << 1 // entry has child entries (descend = i++)
)

// csrEnt is one flattened shortcut-tree entry of one node.
type csrEnt struct {
	rnet rnet.RnetID
	// skip is the absolute entry index just past this entry's subtree:
	// bypassing the Rnet jumps there; descending advances one entry, which
	// is the first child.
	skip int32
	// scOff/scEnd delimit this (rnet, node) pair's shortcuts in the
	// scTo/scDist slabs (valid when csrBorder is set).
	scOff, scEnd int32
	// edgeOff/edgeEnd delimit a leaf entry's physical edges in the
	// leTo/leEdge/leW slabs.
	edgeOff, edgeEnd int32
	flags            uint8
}

// csrIndex is the flattened Route Overlay: per-node tree slabs plus
// shortcut and leaf-edge slabs, all indices int32. It is immutable once
// built; topology or weight mutations are detected by comparing gen to
// the hierarchy's topology generation, and WarmTrees rebuilds it.
type csrIndex struct {
	gen       uint64  // hierarchy topology generation this index reflects
	treeStart []int32 // node -> first entry; len NumNodes+1 (suffix = end)
	ents      []csrEnt

	scTo   []int32 // shortcut target nodes
	scDist []float64

	leTo   []int32 // leaf-edge target nodes
	leEdge []int32 // leaf-edge edge IDs (path reconstruction)
	leW    []float64
}

// buildCSR flattens every node's shortcut tree. The entry order per node
// is the exact order the reference stack traversal processes entries —
// top-level entries reversed, children reversed at every level (a stack
// pops last-first) — so the CSR walk pushes frontier entries in the same
// sequence and FIFO tie-breaking yields identical answers.
func buildCSR(g *graph.Graph, h *rnet.Hierarchy) *csrIndex {
	c := &csrIndex{gen: h.TopoGen()}
	nn := g.NumNodes()
	c.treeStart = make([]int32, nn+1)
	for n := 0; n < nn; n++ {
		c.treeStart[n] = int32(len(c.ents))
		tops := h.Tree(graph.NodeID(n))
		for i := len(tops) - 1; i >= 0; i-- {
			c.emit(g, h, graph.NodeID(n), tops[i])
		}
	}
	c.treeStart[nn] = int32(len(c.ents))
	return c
}

// emit appends t's entry followed by its subtree (children reversed) and
// patches the skip pointer once the subtree's extent is known.
func (c *csrIndex) emit(g *graph.Graph, h *rnet.Hierarchy, n graph.NodeID, t *rnet.TreeNode) {
	idx := len(c.ents)
	e := csrEnt{rnet: t.Rnet}
	if t.IsBorder {
		e.flags |= csrBorder
		e.scOff = int32(len(c.scTo))
		for _, sc := range h.ShortcutsFrom(t.Rnet, n) {
			c.scTo = append(c.scTo, int32(sc.To))
			c.scDist = append(c.scDist, sc.Dist)
		}
		e.scEnd = int32(len(c.scTo))
	}
	if len(t.Children) > 0 {
		e.flags |= csrChildren
	} else {
		e.edgeOff = int32(len(c.leTo))
		for _, half := range t.Edges {
			c.leTo = append(c.leTo, int32(half.To))
			c.leEdge = append(c.leEdge, int32(half.Edge))
			c.leW = append(c.leW, g.Weight(half.Edge))
		}
		e.edgeEnd = int32(len(c.leTo))
	}
	c.ents = append(c.ents, e)
	for i := len(t.Children) - 1; i >= 0; i-- {
		c.emit(g, h, n, t.Children[i])
	}
	c.ents[idx].skip = int32(len(c.ents))
}

// csrBox holds the shared CSR index of one overlay. Frameworks produced by
// Rebind share their network and hierarchy — and therefore the box — so a
// rebuild through one is seen by all.
type csrBox struct {
	idx *csrIndex
}

// ensureCSR returns a CSR index current with the hierarchy's topology,
// rebuilding if stale. Rebuilds mutate shared state: like lazy shortcut
// trees, they must not race with concurrent readers, which is why serving
// layers call WarmTrees (which calls this) after every mutation while
// excluding readers.
func (f *Framework) ensureCSR() *csrIndex {
	c := f.csr.idx
	if c == nil || c.gen != f.h.TopoGen() {
		c = buildCSR(f.g, f.h)
		f.csr.idx = c
	}
	return c
}

// csrVerdict memoizes one Rnet's bypass-vs-descend verdict in the dense
// per-query scratch (a plain method, not a closure, so the hot loop
// allocates nothing).
func (f *Framework) csrVerdict(ad *AssocDir, ws *queryWorkspace, r rnet.RnetID, attr int32, watch *WatchSet) bool {
	if ws.verdictEpoch[r] == ws.epoch {
		return ws.verdictVal[r]
	}
	v := ad.rnetMayContain(r, attr, false) || (watch != nil && watch.rnets[r])
	ws.verdictEpoch[r] = ws.epoch
	ws.verdictVal[r] = v
	return v
}

// searchCSR is searchRef's hot-path twin: identical traversal over the
// flat CSR slabs with a typed heap and epoch-stamped dense visit sets, no
// simulated I/O and no per-pop allocation. Results are appended to dst.
// Equivalence (rank-for-rank, including FIFO tie order) is enforced by the
// differential suite in csr_test.go and TestDifferentialStorm.
func (f *Framework) searchCSR(ad *AssocDir, seeds []Seed, attr int32, k int, radius float64, ws *queryWorkspace, watch *WatchSet, watchDist map[graph.NodeID]float64, lim Limits, dst []Result) ([]Result, QueryStats, error) {
	stats := QueryStats{ShardsSearched: 1}
	var stopErr error
	c := f.ensureCSR()
	f.prepare(ws)
	res := dst
	base := len(dst)

	for _, sd := range seeds {
		ws.spq.Push(int32(sd.Node), -1, sd.Dist)
	}
	for ws.spq.Len() > 0 {
		item, _ := ws.spq.Pop()
		d := item.Prio
		if (k == 0 || radius > 0) && d > radius {
			break // past the range radius / the caller's stop bound
		}
		if item.Obj >= 0 {
			obj := graph.ObjectID(item.Obj)
			if ws.objEpoch[obj] == ws.epoch {
				continue
			}
			ws.objEpoch[obj] = ws.epoch
			if o, ok := f.objects.Get(obj); ok {
				res = append(res, Result{Object: o, Dist: d})
			}
			if k > 0 && len(res)-base >= k {
				break
			}
			continue
		}
		n := item.Node
		if ws.nodeEpoch[n] == ws.epoch {
			continue
		}
		ws.nodeEpoch[n] = ws.epoch
		stats.NodesPopped++
		if err := lim.Stop(stats.NodesPopped); err != nil {
			// Abort with the valid prefix settled so far: by the Dijkstra
			// settling order everything already in res is final.
			stats.Truncated = true
			stopErr = err
			break
		}
		nid := graph.NodeID(n)
		if watch != nil && watch.nodes[n] {
			watchDist[nid] = d
		}

		// Object lookup at the settled node: the attribute filter is
		// inlined so no filtered sub-slice is materialized.
		for _, a := range ad.assocsAt(nid) {
			if attr != 0 && a.attr != attr {
				continue
			}
			if int(a.obj) >= len(ws.objEpoch) {
				ws.growObjEpoch(a.obj)
			}
			if ws.objEpoch[a.obj] != ws.epoch {
				ws.spq.Push(-1, int32(a.obj), d+a.dist)
			}
		}

		// ChoosePath over the flattened tree slab: bypass = jump to skip,
		// descend = advance one entry.
		if int(n)+1 >= len(c.treeStart) {
			continue // node added after the index was built: no live edges
		}
		end := c.treeStart[n+1]
		for i := c.treeStart[n]; i < end; {
			e := &c.ents[i]
			if e.flags&csrBorder != 0 && !f.csrVerdict(ad, ws, e.rnet, attr, watch) {
				stats.RnetsBypassed++
				for j := e.scOff; j < e.scEnd; j++ {
					if to := c.scTo[j]; ws.nodeEpoch[to] != ws.epoch {
						ws.spq.Push(to, -1, d+c.scDist[j])
					}
				}
				i = e.skip
				continue
			}
			if e.flags&csrChildren != 0 {
				stats.RnetsDescended++
				i++
				continue
			}
			for j := e.edgeOff; j < e.edgeEnd; j++ {
				if to := c.leTo[j]; ws.nodeEpoch[to] != ws.epoch {
					ws.spq.Push(to, -1, d+c.leW[j])
				}
			}
			i++
		}
	}
	return res, stats, stopErr
}

// pathVerdict memoizes pathCSR's bypass decision: an Rnet is explorable
// when its abstract may hold a matching object or it contains the target's
// edge.
func (f *Framework) pathVerdict(ws *queryWorkspace, r rnet.RnetID, attr int32, target graph.EdgeID) bool {
	if ws.verdictEpoch[r] == ws.epoch {
		return ws.verdictVal[r]
	}
	v := f.ad.rnetMayContain(r, attr, false) || f.rnetContainsEdge(r, target)
	ws.verdictEpoch[r] = ws.epoch
	ws.verdictVal[r] = v
	return v
}

// pathRelax mirrors pathTo's relax: record the parent link unless the node
// already has a strictly better (or equal — keep-first-on-tie) one, then
// push. src never has its link overwritten.
func (f *Framework) pathRelax(ws *queryWorkspace, src, n graph.NodeID, nd float64, prev graph.NodeID, edge graph.EdgeID, r rnet.RnetID) {
	if ws.linkEpoch[n] == ws.epoch && graph.NodeID(ws.linkPrev[n]) != graph.NoNode && ws.linkDist[n] <= nd {
		return
	}
	if n != src {
		ws.linkEpoch[n] = ws.epoch
		ws.linkPrev[n] = int32(prev)
		ws.linkEdge[n] = int32(edge)
		ws.linkRnet[n] = int32(r)
		ws.linkDist[n] = nd
	}
	ws.spq.Push(int32(n), -1, nd)
}

// pathCSR is pathTo's hot-path twin: the same directed search with parent
// tracking, run over the CSR slabs with dense epoch-stamped link arrays
// instead of per-call maps. Entries are scanned linearly (the reference
// pre-flattens the whole tree and filters per entry, so bypassed subtrees
// are still processed), which a linear slab walk reproduces exactly.
func (f *Framework) pathCSR(q Query, target graph.ObjectID, ws *queryWorkspace, lim Limits) ([]graph.NodeID, float64, QueryStats, error) {
	stats := QueryStats{ShardsSearched: 1}
	if !f.h.Config().StorePaths {
		return nil, 0, stats, fmt.Errorf("core: framework built without StorePaths: %w", apierr.ErrPathsNotStored)
	}
	o, ok := f.objects.Get(target)
	if !ok {
		return nil, 0, stats, fmt.Errorf("core: object %d: %w", target, apierr.ErrNoSuchObject)
	}
	if q.Attr != 0 && o.Attr != q.Attr {
		return nil, 0, stats, fmt.Errorf("core: object %d does not match attribute %d: %w", target, q.Attr, apierr.ErrAttrMismatch)
	}

	c := f.ensureCSR()
	f.prepare(ws)
	ws.growLinks(f.g.NumNodes())

	ws.linkEpoch[q.Node] = ws.epoch
	ws.linkPrev[q.Node] = int32(graph.NoNode)
	ws.linkEdge[q.Node] = int32(graph.NoEdge)
	ws.spq.Push(int32(q.Node), -1, 0)

	e := f.g.Edge(o.Edge)
	bestEnd := graph.NoNode
	bestDist := math.Inf(1)

	for ws.spq.Len() > 0 {
		item, _ := ws.spq.Pop()
		n := item.Node
		d := item.Prio
		if d >= bestDist {
			break // cannot improve the object's distance any further
		}
		if ws.nodeEpoch[n] == ws.epoch {
			continue
		}
		ws.nodeEpoch[n] = ws.epoch
		stats.NodesPopped++
		if err := lim.Stop(stats.NodesPopped); err != nil {
			stats.Truncated = true
			return nil, 0, stats, err
		}
		nid := graph.NodeID(n)

		if nid == e.U && d+o.DU < bestDist {
			bestDist = d + o.DU
			bestEnd = nid
		}
		if nid == e.V && d+o.DV < bestDist {
			bestDist = d + o.DV
			bestEnd = nid
		}

		if int(n)+1 >= len(c.treeStart) {
			continue
		}
		end := c.treeStart[n+1]
		for i := c.treeStart[n]; i < end; i++ {
			ent := &c.ents[i]
			if ent.flags&csrBorder != 0 && !f.pathVerdict(ws, ent.rnet, q.Attr, o.Edge) {
				stats.RnetsBypassed++
				for j := ent.scOff; j < ent.scEnd; j++ {
					f.pathRelax(ws, q.Node, graph.NodeID(c.scTo[j]), d+c.scDist[j], nid, graph.NoEdge, ent.rnet)
				}
				continue
			}
			for j := ent.edgeOff; j < ent.edgeEnd; j++ {
				f.pathRelax(ws, q.Node, graph.NodeID(c.leTo[j]), d+c.leW[j], nid, graph.EdgeID(c.leEdge[j]), rnet.NoRnet)
			}
		}
	}
	if bestEnd == graph.NoNode {
		return nil, math.Inf(1), stats, fmt.Errorf("core: object %d unreachable from node %d: %w", target, q.Node, apierr.ErrUnreachable)
	}

	// Walk the links back to the source, expanding shortcut hops.
	var rev []graph.NodeID
	cur := bestEnd
	for cur != q.Node {
		if ws.linkEpoch[cur] != ws.epoch || graph.NodeID(ws.linkPrev[cur]) == graph.NoNode {
			return nil, 0, stats, fmt.Errorf("core: broken parent chain at node %d", cur)
		}
		prev := graph.NodeID(ws.linkPrev[cur])
		if eid := graph.EdgeID(ws.linkEdge[cur]); eid != graph.NoEdge {
			rev = append(rev, cur)
		} else {
			leg, err := f.expandHop(rnet.RnetID(ws.linkRnet[cur]), prev, cur)
			if err != nil {
				return nil, 0, stats, err
			}
			// leg runs prev..cur; append in reverse, excluding prev.
			for i := len(leg) - 1; i >= 1; i-- {
				rev = append(rev, leg[i])
			}
		}
		cur = prev
	}
	rev = append(rev, q.Node)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, bestDist, stats, nil
}
