package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"road/internal/apierr"
	"road/internal/dataset"
	"road/internal/geom"
	"road/internal/graph"
	"road/internal/rnet"
)

// assertIdenticalResults demands rank-for-rank identity: same order, same
// objects, bit-identical distances. The CSR path replays the reference
// traversal's push sequence exactly (including FIFO tie-breaking), so this
// is stronger than resultsMatch's tie tolerance — any drift is a bug.
func assertIdenticalResults(t *testing.T, label string, ref, got []Result) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: reference returned %d results, CSR %d", label, len(ref), len(got))
	}
	for i := range ref {
		if ref[i].Object.ID != got[i].Object.ID || ref[i].Dist != got[i].Dist {
			t.Fatalf("%s: rank %d diverged: reference (obj %d, %v) vs CSR (obj %d, %v)",
				label, i, ref[i].Object.ID, ref[i].Dist, got[i].Object.ID, got[i].Dist)
		}
	}
}

func assertIdenticalStats(t *testing.T, label string, ref, got QueryStats) {
	t.Helper()
	if ref.NodesPopped != got.NodesPopped || ref.RnetsBypassed != got.RnetsBypassed ||
		ref.RnetsDescended != got.RnetsDescended || ref.Truncated != got.Truncated {
		t.Fatalf("%s: traversal stats diverged: reference %+v vs CSR %+v", label, ref, got)
	}
}

func assertSameError(t *testing.T, label string, ref, got error) {
	t.Helper()
	if (ref == nil) != (got == nil) {
		t.Fatalf("%s: reference error %v vs CSR error %v", label, ref, got)
	}
	if ref == nil {
		return
	}
	for _, typed := range []error{
		apierr.ErrCanceled, apierr.ErrBudgetExhausted, apierr.ErrNoSuchObject,
		apierr.ErrAttrMismatch, apierr.ErrUnreachable, apierr.ErrPathsNotStored,
	} {
		if errors.Is(ref, typed) != errors.Is(got, typed) {
			t.Fatalf("%s: typed error mismatch for %v: reference %v vs CSR %v", label, typed, ref, got)
		}
	}
}

// csrAndRefSessions returns a CSR-path session and a reference-path
// session over the same framework.
func csrAndRefSessions(f *Framework) (*Session, *Session) {
	csr := f.NewSession()
	ref := f.NewSession()
	ref.UseReferencePath(true)
	return csr, ref
}

// TestCSRMatchesReferenceStorm interleaves randomized kNN/range/path
// queries with object churn and network mutations, asserting the CSR hot
// path and the retained page-store reference produce rank-for-rank
// identical answers, distances, traversal statistics and typed errors
// throughout.
func TestCSRMatchesReferenceStorm(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := defaultCfg()
			cfg.Rnet.StorePaths = true
			cfg.BufferPages = -1
			f, g, objects := fixture(t, 700, 900, 160, seed, cfg)
			rng := rand.New(rand.NewSource(seed))
			csr, ref := csrAndRefSessions(f)

			checkQueries := func(phase string) {
				for i := 0; i < 12; i++ {
					q := Query{Node: graph.NodeID(rng.Intn(g.NumNodes())), Attr: int32(rng.Intn(4))}
					label := fmt.Sprintf("%s q%d node=%d attr=%d", phase, i, q.Node, q.Attr)
					switch rng.Intn(4) {
					case 0:
						k := 1 + rng.Intn(12)
						wantRes, wantStats := ref.KNN(q, k)
						gotRes, gotStats := csr.KNN(q, k)
						assertIdenticalResults(t, label+" knn", wantRes, gotRes)
						assertIdenticalStats(t, label+" knn", wantStats, gotStats)
					case 1:
						r := 40 + 400*rng.Float64()
						wantRes, wantStats := ref.Range(q, r)
						gotRes, gotStats := csr.Range(q, r)
						assertIdenticalResults(t, label+" range", wantRes, gotRes)
						assertIdenticalStats(t, label+" range", wantStats, gotStats)
					case 2:
						// Budget-limited kNN: truncation and typed errors
						// must agree too.
						lim := Limits{Budget: 1 + rng.Intn(60)}
						wantRes, wantStats, wantErr := ref.KNNLimited(q, 8, 0, lim)
						gotRes, gotStats, gotErr := csr.KNNLimited(q, 8, 0, lim)
						assertSameError(t, label+" knnlim", wantErr, gotErr)
						assertIdenticalResults(t, label+" knnlim", wantRes, gotRes)
						assertIdenticalStats(t, label+" knnlim", wantStats, gotStats)
					case 3:
						all := objects.All()
						if len(all) == 0 {
							continue
						}
						target := all[rng.Intn(len(all))].ID
						wantPath, wantDist, wantStats, wantErr := ref.PathToLimited(q, target, Limits{})
						gotPath, gotDist, gotStats, gotErr := csr.PathToLimited(q, target, Limits{})
						assertSameError(t, label+" path", wantErr, gotErr)
						if wantErr != nil {
							continue
						}
						if wantDist != gotDist {
							t.Fatalf("%s path: dist %v vs %v", label, wantDist, gotDist)
						}
						if len(wantPath) != len(gotPath) {
							t.Fatalf("%s path: length %d vs %d", label, len(wantPath), len(gotPath))
						}
						for j := range wantPath {
							if wantPath[j] != gotPath[j] {
								t.Fatalf("%s path: hop %d: %d vs %d", label, j, wantPath[j], gotPath[j])
							}
						}
						assertIdenticalStats(t, label+" path", wantStats, gotStats)
					}
				}
			}

			checkQueries("initial")
			var closed []graph.EdgeID
			for round := 0; round < 8; round++ {
				// A burst of mutations, then WarmTrees (the serving-layer
				// contract), then differential queries.
				for m := 0; m < 5; m++ {
					switch rng.Intn(5) {
					case 0:
						e := graph.EdgeID(rng.Intn(g.NumEdges()))
						if !g.Edge(e).Removed {
							_, _ = f.SetEdgeWeight(e, 1+120*rng.Float64())
						}
					case 1:
						e := graph.EdgeID(rng.Intn(g.NumEdges()))
						if !g.Edge(e).Removed {
							if _, err := f.DeleteEdge(e); err == nil {
								closed = append(closed, e)
							}
						}
					case 2:
						if len(closed) > 0 {
							i := rng.Intn(len(closed))
							if _, err := f.RestoreEdge(closed[i]); err == nil {
								closed = append(closed[:i], closed[i+1:]...)
							}
						}
					case 3:
						e := graph.EdgeID(rng.Intn(g.NumEdges()))
						if ed := g.Edge(e); !ed.Removed {
							_, _ = f.InsertObject(e, ed.Weight*rng.Float64(), int32(rng.Intn(4)))
						}
					case 4:
						all := objects.All()
						if len(all) > 0 {
							_ = f.DeleteObject(all[rng.Intn(len(all))].ID)
						}
					}
				}
				f.WarmTrees()
				checkQueries(fmt.Sprintf("round%d", round))
			}
		})
	}
}

// TestCSRTypedErrorsAgree exercises the error edges of the path and limit
// surfaces on both implementations.
func TestCSRTypedErrorsAgree(t *testing.T) {
	cfg := defaultCfg()
	cfg.Rnet.StorePaths = true
	f, _, objects := fixture(t, 200, 260, 30, 5, cfg)
	csr, ref := csrAndRefSessions(f)

	// Unknown object.
	_, _, wantErr := ref.PathTo(Query{Node: 0}, 9999)
	_, _, gotErr := csr.PathTo(Query{Node: 0}, 9999)
	assertSameError(t, "no-such-object", wantErr, gotErr)

	// Attribute mismatch.
	var victim graph.Object
	for _, o := range objects.All() {
		if o.Attr != 0 {
			victim = o
			break
		}
	}
	if victim.ID != 0 || objects.All()[0].ID == victim.ID {
		wrong := victim.Attr%3 + 1
		if wrong == victim.Attr {
			wrong++
		}
		_, _, wantErr = ref.PathTo(Query{Node: 0, Attr: wrong}, victim.ID)
		_, _, gotErr = csr.PathTo(Query{Node: 0, Attr: wrong}, victim.ID)
		assertSameError(t, "attr-mismatch", wantErr, gotErr)
	}

	// Canceled context.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	lim := Limits{Ctx: ctx}
	_, _, wantErr = ref.KNNLimited(Query{Node: 0}, 5, 0, lim)
	_, _, gotErr = csr.KNNLimited(Query{Node: 0}, 5, 0, lim)
	assertSameError(t, "canceled", wantErr, gotErr)

	// Paths not stored.
	f2, _, _ := fixture(t, 120, 150, 10, 6, defaultCfg())
	csr2, ref2 := csrAndRefSessions(f2)
	_, _, wantErr = ref2.PathTo(Query{Node: 0}, 0)
	_, _, gotErr = csr2.PathTo(Query{Node: 0}, 0)
	assertSameError(t, "paths-not-stored", wantErr, gotErr)
}

// TestCSRWatchedSeededAgree drives the sharding router's primitive —
// multi-seed watched searches — through both paths.
func TestCSRWatchedSeededAgree(t *testing.T) {
	f, g, _ := fixture(t, 500, 650, 90, 11, defaultCfg())
	rng := rand.New(rand.NewSource(11))
	csr, ref := csrAndRefSessions(f)
	watched := dataset.RandomNodes(g, 24, 3)
	watch := f.NewWatchSet(watched)
	for i := 0; i < 20; i++ {
		seeds := []Seed{
			{Node: graph.NodeID(rng.Intn(g.NumNodes())), Dist: 10 * rng.Float64()},
			{Node: graph.NodeID(rng.Intn(g.NumNodes())), Dist: 25 * rng.Float64()},
		}
		attr := int32(rng.Intn(3))
		k := 1 + rng.Intn(8)
		wantWD := map[graph.NodeID]float64{}
		gotWD := map[graph.NodeID]float64{}
		wantRes, wantStats := ref.SearchSeeded(seeds, attr, k, 0, watch, wantWD)
		gotRes, gotStats := csr.SearchSeeded(seeds, attr, k, 0, watch, gotWD)
		label := fmt.Sprintf("seeded %d", i)
		assertIdenticalResults(t, label, wantRes, gotRes)
		assertIdenticalStats(t, label, wantStats, gotStats)
		if len(wantWD) != len(gotWD) {
			t.Fatalf("%s: watch dists %d vs %d", label, len(wantWD), len(gotWD))
		}
		for n, d := range wantWD {
			if gd, ok := gotWD[n]; !ok || gd != d {
				t.Fatalf("%s: watched node %d: %v vs %v (ok=%v)", label, n, d, gd, ok)
			}
		}
	}
}

// TestCSRStructure checks the builder's invariants directly: skip pointers
// partition each node's slab, and the leaf-edge slabs agree with the
// graph's adjacency (every live hosted incident edge appears exactly once,
// with its current weight).
func TestCSRStructure(t *testing.T) {
	f, g, _ := fixture(t, 400, 520, 60, 17, defaultCfg())
	f.WarmTrees()
	checkCSRAgainstAdjacency(t, f, g)
}

func checkCSRAgainstAdjacency(t *testing.T, f *Framework, g *graph.Graph) {
	t.Helper()
	c := f.ensureCSR()
	if len(c.treeStart) != g.NumNodes()+1 {
		t.Fatalf("treeStart covers %d nodes, graph has %d", len(c.treeStart)-1, g.NumNodes())
	}
	for n := 0; n < g.NumNodes(); n++ {
		start, end := c.treeStart[n], c.treeStart[n+1]
		if start > end || int(end) > len(c.ents) {
			t.Fatalf("node %d: bad slab [%d,%d)", n, start, end)
		}
		type edgeRef struct {
			to   int32
			edge int32
		}
		got := map[edgeRef]float64{}
		// Walk entries linearly, validating skip pointers and collecting
		// leaf edges.
		for i := start; i < end; i++ {
			e := &c.ents[i]
			if e.skip <= i || e.skip > end {
				t.Fatalf("node %d entry %d: skip %d outside (%d,%d]", n, i, e.skip, i, end)
			}
			if e.flags&csrChildren != 0 {
				if e.skip == i+1 {
					t.Fatalf("node %d entry %d: children flag but empty subtree", n, i)
				}
				continue
			}
			if e.skip != i+1 {
				t.Fatalf("node %d entry %d: leaf entry with skip %d != %d", n, i, e.skip, i+1)
			}
			for j := e.edgeOff; j < e.edgeEnd; j++ {
				ref := edgeRef{to: c.leTo[j], edge: c.leEdge[j]}
				if _, dup := got[ref]; dup {
					t.Fatalf("node %d: duplicate leaf edge %+v", n, ref)
				}
				got[ref] = c.leW[j]
			}
		}
		// Expected: live incident edges hosted by some leaf Rnet.
		want := map[edgeRef]float64{}
		for _, half := range g.Neighbors(graph.NodeID(n)) {
			if f.h.LeafOf(half.Edge) == rnet.NoRnet {
				continue
			}
			want[edgeRef{to: int32(half.To), edge: int32(half.Edge)}] = g.Weight(half.Edge)
		}
		if len(got) != len(want) {
			t.Fatalf("node %d: slab has %d edges, adjacency %d", n, len(got), len(want))
		}
		for ref, w := range want {
			if gw, ok := got[ref]; !ok || gw != w {
				t.Fatalf("node %d: edge %+v weight %v vs slab %v (ok=%v)", n, ref, w, gw, ok)
			}
		}
	}
}

// FuzzCSRBuild feeds arbitrary small graphs — including isolated nodes and
// closed edges — through the CSR builder, asserting the structural
// adjacency invariant and differential query equality on every input.
func FuzzCSRBuild(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 1, 10, 1, 2, 20})
	f.Add([]byte{8, 0, 1, 5, 1, 2, 5, 2, 3, 5, 3, 0, 5, 4, 5, 9})
	f.Add([]byte{12, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4, 0, 5, 0, 2, 9, 1, 3, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			t.Skip("inputs beyond a small graph add nothing")
		}
		nodes := 2
		if len(data) > 0 {
			nodes = 2 + int(data[0]%14)
		}
		g := &graph.Graph{}
		for i := 0; i < nodes; i++ {
			g.AddNode(geom.Point{X: float64(i % 4), Y: float64(i / 4)})
		}
		// Edge triples (u, v, w); duplicates and self-loops are rejected by
		// the graph and simply skipped. Trailing bytes close edges and
		// place objects.
		var edges []graph.EdgeID
		i := 1
		for ; i+2 < len(data) && len(edges) < 3*nodes; i += 3 {
			u := graph.NodeID(int(data[i]) % nodes)
			v := graph.NodeID(int(data[i+1]) % nodes)
			w := 1 + float64(data[i+2]%50)
			if e, err := g.AddEdge(u, v, w); err == nil {
				edges = append(edges, e)
			}
		}
		if len(edges) == 0 {
			return
		}
		objects := graph.NewObjectSet(g)
		for j := 0; j < len(data) && j < 6; j++ {
			e := edges[int(data[j])%len(edges)]
			du := g.Edge(e).Weight * float64(data[j]%8) / 8
			_, _ = objects.Add(e, du, int32(data[j]%3))
		}
		cfg := Config{
			Rnet:        rnet.Config{Fanout: 2, Levels: 2, KLPasses: -1, StorePaths: true},
			BufferPages: -1,
		}
		fw, err := Build(g, objects, cfg)
		if err != nil {
			t.Skipf("unbuildable fuzz graph: %v", err)
		}
		// Close some edges through the framework so the CSR rebuild path
		// sees topology churn.
		for j := 0; j < len(data) && j < 3; j++ {
			e := edges[int(data[len(data)-1-j])%len(edges)]
			if !g.Edge(e).Removed {
				_, _ = fw.DeleteEdge(e)
			}
		}
		fw.WarmTrees()
		checkCSRAgainstAdjacency(t, fw, g)

		csr, ref := csrAndRefSessions(fw)
		for n := 0; n < g.NumNodes(); n++ {
			q := Query{Node: graph.NodeID(n)}
			wantRes, wantStats := ref.KNN(q, 3)
			gotRes, gotStats := csr.KNN(q, 3)
			assertIdenticalResults(t, fmt.Sprintf("fuzz knn n%d", n), wantRes, gotRes)
			assertIdenticalStats(t, fmt.Sprintf("fuzz knn n%d", n), wantStats, gotStats)
			wantRes, wantStats = ref.Range(q, 60)
			gotRes, gotStats = csr.Range(q, 60)
			assertIdenticalResults(t, fmt.Sprintf("fuzz range n%d", n), wantRes, gotRes)
			assertIdenticalStats(t, fmt.Sprintf("fuzz range n%d", n), wantStats, gotStats)
		}
		// And against ground truth, so both paths can't be wrong together.
		for n := 0; n < g.NumNodes(); n++ {
			q := Query{Node: graph.NodeID(n)}
			gotRes, _ := csr.KNN(q, 3)
			want := bruteKNN(g, objects, q, 3)
			if len(want) != len(gotRes) {
				t.Fatalf("fuzz brute n%d: %d vs %d results", n, len(want), len(gotRes))
			}
			for j := range want {
				if math.Abs(want[j].Dist-gotRes[j].Dist) > 1e-9 {
					t.Fatalf("fuzz brute n%d rank %d: dist %v vs %v", n, j, want[j].Dist, gotRes[j].Dist)
				}
			}
		}
	})
}

// BenchmarkSessionKNNCSR / BenchmarkSessionKNNReference measure the two
// query paths side by side (the roadbench -hotpath mode reports the same
// comparison on full datasets).
func benchmarkSessionKNN(b *testing.B, ref bool) {
	cfg := defaultCfg()
	cfg.BufferPages = -1
	g := dataset.MustGenerate(dataset.Spec{Name: "b", Nodes: 8000, Edges: 10400, Seed: 99})
	objects := dataset.PlaceUniform(g, 1200, 100, 0, 7, 9)
	fw, err := Build(g, objects, cfg)
	if err != nil {
		b.Fatal(err)
	}
	s := fw.NewSession()
	s.UseReferencePath(ref)
	starts := dataset.RandomNodes(g, 256, 5)
	buf := make([]Result, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = s.KNNAppend(buf[:0], Query{Node: starts[i%len(starts)]}, 10)
	}
	_ = buf
}

func BenchmarkSessionKNNCSR(b *testing.B)       { benchmarkSessionKNN(b, false) }
func BenchmarkSessionKNNReference(b *testing.B) { benchmarkSessionKNN(b, true) }
