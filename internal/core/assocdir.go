package core

import (
	"sort"

	"road/internal/btree"
	"road/internal/graph"
	"road/internal/rnet"
	"road/internal/storage"
)

// Association Directory key space: node keys are the node IDs, Rnet keys
// are offset into a disjoint range (§3.4 indexes both in one B+-tree).
const rnetKeyBase = int64(1) << 32

// Negative page-ID namespaces keep simulated B+-tree node pages distinct
// from record pages (which use non-negative allocated IDs) while sharing
// one LRU buffer.
const (
	adIndexPageBase = storage.PageID(-1)
	roIndexPageBase = storage.PageID(-1) << 32
)

func nodeKey(n graph.NodeID) int64 { return int64(n) }
func rnetKey(r rnet.RnetID) int64  { return rnetKeyBase + int64(r) }

// objAssoc associates an object with one endpoint node of its edge,
// carrying the object's distance from that node and its attribute.
type objAssoc struct {
	obj  graph.ObjectID
	dist float64
	attr int32
}

// AssocDir is the Association Directory (§3.4): a B+-tree over node IDs
// and Rnet IDs. A node's entry holds the objects on its incident edges
// with their distances; an Rnet's entry holds the object abstract. Nodes
// and Rnets without objects have an empty entry — absence implies
// emptiness. The entries themselves live in dense arrays indexed by node
// and Rnet ID, so the per-settled-node probes on the query hot path are
// array loads; the simulated B+-tree and page layout exist only for the
// paper-faithful I/O-accounting report mode.
type AssocDir struct {
	h    *rnet.Hierarchy
	kind AbstractKind

	// byNode[n] holds node n's associations (empty = no entry);
	// abstracts[r] holds Rnet r's abstract (nil = no entry). Both are
	// dense — sized to the network at construction, grown on demand if
	// nodes are added later.
	byNode    [][]objAssoc
	abstracts []*abstractRec

	// index simulates the paged B+-tree; layout holds the entry records.
	index  *btree.Tree[int32]
	layout *storage.Layout
	store  *storage.Store
}

// NewAssocDir builds the directory for all objects currently in set,
// over hierarchy h. store may be nil to skip I/O simulation.
func NewAssocDir(h *rnet.Hierarchy, set *graph.ObjectSet, kind AbstractKind, store *storage.Store) *AssocDir {
	ad := &AssocDir{
		h:         h,
		kind:      kind,
		byNode:    make([][]objAssoc, h.Graph().NumNodes()),
		abstracts: make([]*abstractRec, h.NumRnets()),
		index:     btree.New[int32](btree.DefaultOrder),
		store:     store,
	}
	if store != nil {
		ad.layout = storage.NewLayout(store)
		// B+-tree nodes occupy their own page namespace (negative IDs) so
		// they share the buffer with record pages without aliasing them.
		ad.index.OnAccess = func(id int64) { store.Read(adIndexPageBase - storage.PageID(id)) }
	}
	for _, o := range set.All() {
		ad.Insert(o)
	}
	return ad
}

// Kind returns the abstract representation in use.
func (ad *AssocDir) Kind() AbstractKind { return ad.kind }

// Insert associates object o with its edge's endpoint nodes and adds it to
// the object abstracts of the enclosing Rnet and all its ancestors
// (Lemma 1 keeps parents consistent with children).
func (ad *AssocDir) Insert(o graph.Object) {
	e := ad.h.Graph().Edge(o.Edge)
	ad.addNodeAssoc(e.U, objAssoc{obj: o.ID, dist: o.DU, attr: o.Attr})
	ad.addNodeAssoc(e.V, objAssoc{obj: o.ID, dist: o.DV, attr: o.Attr})
	leaf := ad.h.LeafOf(o.Edge)
	if leaf != rnet.NoRnet {
		for _, r := range ad.h.AncestorChain(leaf) {
			ad.growRnets(r)
			a := ad.abstracts[r]
			if a == nil {
				a = newAbstractRec(ad.kind)
				ad.abstracts[r] = a
				ad.indexPut(rnetKey(r))
			}
			a.add(o.Attr)
			ad.touchRecord(rnetKey(r))
		}
	}
}

// growNodes/growRnets extend the dense entry arrays when the network has
// gained nodes (or, defensively, Rnets) since construction.
func (ad *AssocDir) growNodes(n graph.NodeID) {
	for int(n) >= len(ad.byNode) {
		ad.byNode = append(ad.byNode, nil)
	}
}

func (ad *AssocDir) growRnets(r rnet.RnetID) {
	for int(r) >= len(ad.abstracts) {
		ad.abstracts = append(ad.abstracts, nil)
	}
}

// Remove dissociates object o from nodes and abstracts.
func (ad *AssocDir) Remove(o graph.Object) {
	e := ad.h.Graph().Edge(o.Edge)
	ad.dropNodeAssoc(e.U, o.ID)
	ad.dropNodeAssoc(e.V, o.ID)
	leaf := ad.h.LeafOf(o.Edge)
	if leaf != rnet.NoRnet {
		for _, r := range ad.h.AncestorChain(leaf) {
			if int(r) >= len(ad.abstracts) {
				continue
			}
			a := ad.abstracts[r]
			if a == nil {
				continue
			}
			a.remove(o.Attr)
			if a.total == 0 {
				ad.abstracts[r] = nil
				ad.index.Delete(rnetKey(r))
			} else {
				ad.touchRecord(rnetKey(r))
			}
		}
	}
}

// UpdateAttr changes an object's attribute category in place (§5.1's
// "changes of object attributes").
func (ad *AssocDir) UpdateAttr(o graph.Object, newAttr int32) {
	ad.Remove(o)
	o.Attr = newAttr
	ad.Insert(o)
}

func (ad *AssocDir) addNodeAssoc(n graph.NodeID, a objAssoc) {
	ad.growNodes(n)
	if len(ad.byNode[n]) == 0 {
		ad.indexPut(nodeKey(n))
	}
	ad.byNode[n] = append(ad.byNode[n], a)
	sort.Slice(ad.byNode[n], func(i, j int) bool { return ad.byNode[n][i].obj < ad.byNode[n][j].obj })
	ad.touchRecord(nodeKey(n))
}

func (ad *AssocDir) dropNodeAssoc(n graph.NodeID, id graph.ObjectID) {
	if int(n) >= len(ad.byNode) {
		return
	}
	list := ad.byNode[n]
	for i := range list {
		if list[i].obj == id {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		ad.byNode[n] = nil
		ad.index.Delete(nodeKey(n))
	} else {
		ad.byNode[n] = list
		ad.touchRecord(nodeKey(n))
	}
}

// ObjectsAt returns the associations at node n whose attribute matches
// attr (0 = any), charging the B+-tree probe and — when an entry exists —
// the record read.
func (ad *AssocDir) ObjectsAt(n graph.NodeID, attr int32) []objAssoc {
	return ad.objectsAt(n, attr, true)
}

func (ad *AssocDir) objectsAt(n graph.NodeID, attr int32, chargeIO bool) []objAssoc {
	if chargeIO {
		ad.index.Get(nodeKey(n))
	}
	list := ad.assocsAt(n)
	if len(list) == 0 {
		return nil
	}
	if chargeIO {
		ad.readRecord(nodeKey(n))
	}
	if attr == 0 {
		return list
	}
	var out []objAssoc
	for _, a := range list {
		if a.attr == attr {
			out = append(out, a)
		}
	}
	return out
}

// RnetMayContain reports whether Rnet r may contain an object matching
// attr — the SearchObject(AD, R) probe of Algorithm ChoosePath. Absent
// entries mean definitely empty.
func (ad *AssocDir) RnetMayContain(r rnet.RnetID, attr int32) bool {
	return ad.rnetMayContain(r, attr, true)
}

// assocsAt returns node n's raw association list without I/O accounting or
// attribute filtering — the CSR hot path's probe, a single array load.
func (ad *AssocDir) assocsAt(n graph.NodeID) []objAssoc {
	if int(n) >= len(ad.byNode) {
		return nil
	}
	return ad.byNode[n]
}

func (ad *AssocDir) rnetMayContain(r rnet.RnetID, attr int32, chargeIO bool) bool {
	if chargeIO {
		ad.index.Get(rnetKey(r))
	}
	if int(r) >= len(ad.abstracts) {
		return false
	}
	a := ad.abstracts[r]
	if a == nil {
		return false
	}
	if chargeIO {
		ad.readRecord(rnetKey(r))
	}
	return a.mayContain(ad.kind, attr)
}

// AbstractTotal returns the exact object count inside Rnet r (0 if absent)
// without charging I/O; used by invariant tests.
func (ad *AssocDir) AbstractTotal(r rnet.RnetID) int {
	if int(r) < len(ad.abstracts) && ad.abstracts[r] != nil {
		return ad.abstracts[r].total
	}
	return 0
}

// SizeBytes estimates the directory's storage footprint: node entries plus
// abstracts under the configured representation.
func (ad *AssocDir) SizeBytes() int64 {
	var total int64
	for _, list := range ad.byNode {
		if len(list) > 0 {
			total += 8 + int64(len(list))*16
		}
	}
	for _, a := range ad.abstracts {
		if a != nil {
			total += 8 + int64(a.sizeBytes(ad.kind))
		}
	}
	return total
}

// indexPut registers a key in the simulated B+-tree and places its record.
func (ad *AssocDir) indexPut(key int64) {
	ad.index.Put(key, 0)
	if ad.layout != nil && !ad.layout.Has(key) {
		ad.layout.Place(key, ad.recordSize(key))
		ad.layout.Write(key)
	}
}

func (ad *AssocDir) recordSize(key int64) int {
	if key >= rnetKeyBase {
		if r := rnet.RnetID(key - rnetKeyBase); int(r) < len(ad.abstracts) && ad.abstracts[r] != nil {
			return ad.abstracts[r].sizeBytes(ad.kind)
		}
		return 4
	}
	return 8 + 16*len(ad.assocsAt(graph.NodeID(key)))
}

func (ad *AssocDir) touchRecord(key int64) {
	if ad.layout != nil && ad.layout.Has(key) {
		ad.layout.Write(key)
	}
}

func (ad *AssocDir) readRecord(key int64) {
	if ad.layout != nil {
		ad.layout.Read(key)
	}
}
