// Package core implements the ROAD framework proper (§3.4–§5): the Route
// Overlay (a B+-tree over nodes leading to per-node shortcut trees), the
// Association Directory (a B+-tree over node and Rnet IDs leading to
// objects and object abstracts), the kNN and range search algorithms of
// Figures 9–10, and the object/network maintenance procedures. The
// framework keeps the paper's clean separation: the network side (graph +
// Rnet hierarchy + Route Overlay) knows nothing about objects; the object
// side (ObjectSet + Association Directory) maps content onto the network
// at query time.
package core

import (
	"road/internal/bloom"
)

// AbstractKind selects the representation of object abstracts — the
// per-Rnet object summaries that let a search decide whether a region can
// be bypassed (§3.4 suggests aggregates, Bloom filters and signatures).
type AbstractKind int

const (
	// AbstractSet keeps exact per-attribute counts: no false positives,
	// largest footprint.
	AbstractSet AbstractKind = iota
	// AbstractCount keeps only a total object count: an Rnet is bypassed
	// only when entirely empty, so attribute-filtered queries descend
	// conservatively. Smallest footprint.
	AbstractCount
	// AbstractBloom keeps a total count plus a Bloom filter over attribute
	// categories: compact with a small false-positive rate (extra descents,
	// never wrong answers).
	AbstractBloom
)

// String returns the kind's name for reports.
func (k AbstractKind) String() string {
	switch k {
	case AbstractSet:
		return "set"
	case AbstractCount:
		return "count"
	case AbstractBloom:
		return "bloom"
	}
	return "unknown"
}

// bloomBits sizes per-Rnet attribute filters; attribute universes are
// small, so a fixed small filter suffices.
const bloomBits = 128

// abstractRec is one Rnet's object abstract. Exact per-attribute counts
// are always maintained as ground truth (they make removals O(1)); the
// configured kind controls what a query consults and what the size metric
// charges.
type abstractRec struct {
	total  int
	counts map[int32]int
	filter *bloom.Filter // AbstractBloom only, rebuilt on removal
}

func newAbstractRec(kind AbstractKind) *abstractRec {
	a := &abstractRec{counts: make(map[int32]int)}
	if kind == AbstractBloom {
		a.filter = bloom.New(bloomBits, 3)
	}
	return a
}

func (a *abstractRec) add(attr int32) {
	a.total++
	a.counts[attr]++
	if a.filter != nil {
		a.filter.Add(uint64(uint32(attr)))
	}
}

func (a *abstractRec) remove(attr int32) {
	if a.counts[attr] == 0 {
		return
	}
	a.total--
	a.counts[attr]--
	if a.counts[attr] == 0 {
		delete(a.counts, attr)
	}
	if a.filter != nil {
		// Bloom filters cannot delete; rebuild from the exact counts.
		a.filter.Reset()
		for attr, n := range a.counts {
			if n > 0 {
				a.filter.Add(uint64(uint32(attr)))
			}
		}
	}
}

// mayContain reports whether the abstract admits an object with the given
// attribute (0 = any object), under the configured representation.
func (a *abstractRec) mayContain(kind AbstractKind, attr int32) bool {
	if a.total == 0 {
		return false
	}
	if attr == 0 {
		return true
	}
	switch kind {
	case AbstractSet:
		return a.counts[attr] > 0
	case AbstractCount:
		return true // cannot discriminate attributes: conservative
	case AbstractBloom:
		return a.filter.Contains(uint64(uint32(attr)))
	}
	return true
}

// sizeBytes is the storage footprint charged for this abstract under the
// configured representation.
func (a *abstractRec) sizeBytes(kind AbstractKind) int {
	switch kind {
	case AbstractSet:
		return 4 + 8*len(a.counts)
	case AbstractCount:
		return 4
	case AbstractBloom:
		return 4 + bloomBits/8
	}
	return 4
}
