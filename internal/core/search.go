package core

import (
	"context"
	"fmt"

	"road/internal/apierr"
	"road/internal/graph"
	"road/internal/pqueue"
	"road/internal/rnet"
	"road/internal/storage"
)

// Query is an LDSQ: a query node plus an attribute predicate
// (Attr 0 matches any object).
type Query struct {
	Node graph.NodeID
	Attr int32
}

// Result is one answer object with its network distance from the query
// node.
type Result struct {
	Object graph.Object
	Dist   float64
}

// QueryStats reports the cost of one query execution.
type QueryStats struct {
	// NodesPopped counts settled network nodes (the traversal metric).
	NodesPopped int
	// RnetsBypassed counts Rnets skipped via shortcuts.
	RnetsBypassed int
	// RnetsDescended counts Rnet entries expanded because their abstract
	// matched the predicate.
	RnetsDescended int
	// ShardsSearched counts the shards the query expanded in: always 1
	// for a single-index search; for a sharded kNN/range query, one per
	// home shard plus one per shard the expansion re-entered through its
	// borders — so a query that never crossed a boundary reports 1, even
	// when its home shard was searched twice (the watched re-run). Path
	// queries count per-shard Dijkstra legs instead.
	ShardsSearched int
	// Truncated reports a partial result: the search stopped early on
	// context cancellation or budget exhaustion. What was returned is a
	// valid prefix of the full answer (Dijkstra settling order).
	Truncated bool
	// IO holds the simulated page I/O incurred (zero when simulation off).
	IO storage.Stats
}

// Limits bundles the cooperative-stop inputs of one search: a context
// checked every cancelCheckEvery settled nodes, and a budget capping the
// total nodes settled. The zero value imposes no limits.
type Limits struct {
	// Ctx, when non-nil, cancels the search: the loop polls Ctx.Err()
	// every cancelCheckEvery heap pops and aborts with ErrCanceled.
	Ctx context.Context
	// Budget, when > 0, stops the search after that many settled nodes
	// with ErrBudgetExhausted.
	Budget int
}

// cancelCheckEvery is how many settled nodes a search processes between
// context polls — a power of two so the check compiles to a mask. At
// typical pop rates (millions/s) this bounds cancellation latency to well
// under a millisecond.
const cancelCheckEvery = 64

// Stop consults the limits after a node was settled (stats.NodesPopped
// already incremented). A non-nil return aborts the search; the caller
// marks the result truncated.
func (l Limits) Stop(popped int) error {
	if l.Ctx != nil && (popped-1)&(cancelCheckEvery-1) == 0 {
		if err := l.Ctx.Err(); err != nil {
			return fmt.Errorf("%w: %w", apierr.ErrCanceled, err)
		}
	}
	if l.Budget > 0 && popped >= l.Budget {
		return apierr.ErrBudgetExhausted
	}
	return nil
}

// queueEntry distinguishes node and object entries of the search queue
// (Algorithm kNNSearch keeps both in one priority queue).
type queueEntry struct {
	node graph.NodeID // valid when obj < 0
	obj  graph.ObjectID
}

// Seed is one source of a multi-source search: a node paired with the
// distance already accumulated to reach it. The sharding router enters a
// shard's framework through its border nodes this way.
type Seed = graph.Seed

// WatchSet marks nodes whose exact settled distances a search must report
// — the sharding router watches a shard's border nodes so it can expand
// the search into neighbouring shards. Because the ROAD traversal bypasses
// object-free Rnets via shortcuts, a watched node buried inside such an
// Rnet would normally never be settled; the set therefore also records
// every Rnet containing a watched node, and the search descends into those
// instead of bypassing them. A WatchSet is immutable after construction
// and safe to share across concurrent sessions; it must be rebuilt after
// topology mutations (edge additions, closures, reopenings), which can
// move nodes between Rnets.
type WatchSet struct {
	// Dense membership tables — they sit on the per-settled-node path of
	// every watched search, so lookups must be array indexing, not
	// hashing. Sized to the framework's node and Rnet counts (both fixed
	// after build; AddEdge reuses existing leaf Rnets).
	nodes []bool
	rnets []bool
}

// NewWatchSet builds a watch set over the given nodes of f's network.
func (f *Framework) NewWatchSet(nodes []graph.NodeID) *WatchSet {
	w := &WatchSet{
		nodes: make([]bool, f.g.NumNodes()),
		rnets: make([]bool, f.h.NumRnets()),
	}
	for _, n := range nodes {
		w.nodes[n] = true
		for _, half := range f.g.Neighbors(n) {
			leaf := f.h.LeafOf(half.Edge)
			if leaf == rnet.NoRnet {
				continue
			}
			for r := leaf; r != rnet.NoRnet; r = f.h.Rnet(r).Parent {
				if w.rnets[r] {
					break // ancestors already marked via a sibling
				}
				w.rnets[r] = true
			}
		}
	}
	return w
}

// Contains reports whether n is watched.
func (w *WatchSet) Contains(n graph.NodeID) bool {
	return int(n) < len(w.nodes) && w.nodes[n]
}

// queryWorkspace holds per-query scratch state, reused across queries so
// steady-state searches allocate nothing. A Framework (and thus its
// workspace) is not safe for concurrent queries.
//
// The reference (report-mode) path uses the boxed queue plus verdict and
// visited-object maps; the CSR hot path uses the typed queue plus the
// dense epoch-stamped arrays, all sharing one epoch counter so clearing a
// query is a single increment.
type queryWorkspace struct {
	pq        pqueue.Queue
	spq       pqueue.SearchQueue
	nodeEpoch []uint32
	epoch     uint32
	stack     []*rnet.TreeNode
	verdicts  map[rnet.RnetID]bool
	visObjs   map[graph.ObjectID]bool

	// useRef forces the retained page-store reference implementation even
	// without I/O charging — the differential harness and the hotpath
	// benchmark flip it to compare the two paths in one process.
	useRef bool

	// Dense CSR-path scratch: Rnet verdict memo, visited objects, and the
	// path search's parent links, all valid only where the stamp matches
	// epoch.
	verdictEpoch []uint32
	verdictVal   []bool
	objEpoch     []uint32
	linkEpoch    []uint32
	linkPrev     []int32
	linkEdge     []int32
	linkRnet     []int32
	linkDist     []float64
}

func (f *Framework) workspace() *queryWorkspace {
	ws := f.qws
	if ws == nil {
		ws = &queryWorkspace{
			verdicts: make(map[rnet.RnetID]bool),
			visObjs:  make(map[graph.ObjectID]bool),
		}
		f.qws = ws
	}
	return ws
}

// prepare readies a workspace for one query: bumps the epoch (clearing all
// stamped arrays implicitly), sizes the dense scratch to the current
// network, and clears per-query state. Growth only happens when the
// network or object-ID space grew, so steady state allocates nothing.
func (f *Framework) prepare(ws *queryWorkspace) {
	ws.epoch++
	if ws.epoch == 0 {
		// Epoch wrapped: every stamped array must be zeroed, or ancient
		// stamps could alias the restarted counter.
		clear(ws.nodeEpoch)
		clear(ws.verdictEpoch)
		clear(ws.objEpoch)
		clear(ws.linkEpoch)
		ws.epoch = 1
	}
	if n := f.g.NumNodes(); len(ws.nodeEpoch) < n {
		ws.nodeEpoch = make([]uint32, n)
	}
	if r := f.h.NumRnets(); len(ws.verdictEpoch) < r {
		ws.verdictEpoch = make([]uint32, r)
		ws.verdictVal = make([]bool, r)
	}
	if o := int(f.objects.NextID()); len(ws.objEpoch) < o {
		ws.objEpoch = make([]uint32, o)
	}
	ws.pq.Reset()
	ws.spq.Reset()
	clear(ws.verdicts)
	clear(ws.visObjs)
}

// growObjEpoch extends the visited-object stamps to cover id (objects from
// an attached directory can outrange the framework's own set).
func (ws *queryWorkspace) growObjEpoch(id graph.ObjectID) {
	grown := make([]uint32, id+1)
	copy(grown, ws.objEpoch)
	ws.objEpoch = grown
}

// growLinks sizes the path search's parent-link arrays to n nodes.
func (ws *queryWorkspace) growLinks(n int) {
	if len(ws.linkEpoch) >= n {
		return
	}
	ws.linkEpoch = make([]uint32, n)
	ws.linkPrev = make([]int32, n)
	ws.linkEdge = make([]int32, n)
	ws.linkRnet = make([]int32, n)
	ws.linkDist = make([]float64, n)
}

func (ws *queryWorkspace) nodeVisited(n graph.NodeID) bool { return ws.nodeEpoch[n] == ws.epoch }
func (ws *queryWorkspace) markNode(n graph.NodeID)         { ws.nodeEpoch[n] = ws.epoch }

// KNN returns the k objects matching q.Attr nearest to q.Node in network
// distance, closest first (Algorithm kNNSearch, Figure 9).
func (f *Framework) KNN(q Query, k int) ([]Result, QueryStats) {
	return f.KNNOn(f.ad, q, k)
}

// KNNLimited is KNN under Limits: cooperative cancellation and a
// traversal budget. The result is a valid prefix when err is non-nil. An
// optional positive maxRadius additionally stops the expansion at that
// distance.
func (f *Framework) KNNLimited(q Query, k int, maxRadius float64, lim Limits) ([]Result, QueryStats, error) {
	return f.searchSeeded(f.ad, []Seed{{Node: q.Node}}, q.Attr, k, maxRadius, f.workspace(), true, nil, nil, lim, nil)
}

// Range returns all objects matching q.Attr within network distance radius
// of q.Node, closest first (Algorithm RangeSearch).
func (f *Framework) Range(q Query, radius float64) ([]Result, QueryStats) {
	return f.RangeOn(f.ad, q, radius)
}

// RangeLimited is Range under Limits.
func (f *Framework) RangeLimited(q Query, radius float64, lim Limits) ([]Result, QueryStats, error) {
	return f.searchSeeded(f.ad, []Seed{{Node: q.Node}}, q.Attr, 0, radius, f.workspace(), true, nil, nil, lim, nil)
}

// KNNOn runs a kNN query against a specific Association Directory
// (supporting multiple object sets on one overlay).
func (f *Framework) KNNOn(ad *AssocDir, q Query, k int) ([]Result, QueryStats) {
	return f.search(ad, q, k, 0)
}

// RangeOn runs a range query against a specific Association Directory.
func (f *Framework) RangeOn(ad *AssocDir, q Query, radius float64) ([]Result, QueryStats) {
	return f.search(ad, q, 0, radius)
}

// search is the shared expansion entry point for the Framework's own
// single-threaded methods, with full I/O simulation.
func (f *Framework) search(ad *AssocDir, q Query, k int, radius float64) ([]Result, QueryStats) {
	res, stats, _ := f.searchWith(ad, q, k, radius, f.workspace(), true, Limits{}, nil)
	return res, stats
}

// searchWith is the shared expansion: it gradually grows the search from
// the query node, looking up objects at settled nodes and choosing — per
// Rnet entry of each settled node's shortcut tree — between bypassing via
// shortcuts (no matching object inside) and descending (Figure 10). k>0
// selects kNN semantics; otherwise radius bounds a range query. chargeIO
// routes index accesses through the simulated page store; Sessions pass
// false so concurrent queries never touch shared buffer state.
func (f *Framework) searchWith(ad *AssocDir, q Query, k int, radius float64, ws *queryWorkspace, chargeIO bool, lim Limits, dst []Result) ([]Result, QueryStats, error) {
	return f.searchSeeded(ad, []Seed{{Node: q.Node}}, q.Attr, k, radius, ws, chargeIO, nil, nil, lim, dst)
}

// searchSeeded is searchWith generalized to multiple seeds and an optional
// watch set. Every seed enters the queue at its accumulated distance, so
// results report min over seeds of seed.Dist + d(seed, object). When watch
// is non-nil, watchDist receives the exact settled distance of every
// watched node the expansion reaches before it stops; by the Dijkstra
// settling order, that is every watched node strictly closer than the kth
// result (kNN) or within the radius (range) — exactly the border set a
// cross-shard search may usefully continue through.
//
// With k > 0 a positive radius acts as an additional stop bound: the
// expansion halts once the frontier passes it even with fewer than k
// results. The sharding router passes its current global kth-best, so a
// shard entered near the bound is not searched beyond what could still
// improve the merged answer.
//
// Two implementations serve it: report-mode queries (chargeIO, or a
// workspace pinned to the reference path) run searchRef, the retained
// page-store traversal; everything else — every Session, and therefore
// every serving-layer query on all Store shapes — runs searchCSR over the
// flat slabs. Both append results to dst (nil for a fresh slice).
func (f *Framework) searchSeeded(ad *AssocDir, seeds []Seed, attr int32, k int, radius float64, ws *queryWorkspace, chargeIO bool, watch *WatchSet, watchDist map[graph.NodeID]float64, lim Limits, dst []Result) ([]Result, QueryStats, error) {
	if chargeIO || ws.useRef {
		return f.searchRef(ad, seeds, attr, k, radius, ws, chargeIO, watch, watchDist, lim, dst)
	}
	return f.searchCSR(ad, seeds, attr, k, radius, ws, watch, watchDist, lim, dst)
}

// searchRef is the reference expansion over the pointer-structured route
// overlay and the simulated page store — the paper-faithful I/O-accounting
// report mode, and the oracle the CSR hot path is differentially tested
// against.
func (f *Framework) searchRef(ad *AssocDir, seeds []Seed, attr int32, k int, radius float64, ws *queryWorkspace, chargeIO bool, watch *WatchSet, watchDist map[graph.NodeID]float64, lim Limits, dst []Result) ([]Result, QueryStats, error) {
	stats := QueryStats{ShardsSearched: 1}
	var stopErr error
	var ioMark storage.Stats
	if f.store != nil && chargeIO {
		ioMark = f.store.Stats()
	}

	f.prepare(ws)
	res := dst
	base := len(dst)

	for _, sd := range seeds {
		ws.pq.Push(queueEntry{node: sd.Node, obj: -1}, sd.Dist)
	}
	for ws.pq.Len() > 0 {
		item, _ := ws.pq.Pop()
		entry := item.Value.(queueEntry)
		d := item.Priority
		if (k == 0 || radius > 0) && d > radius {
			break // past the range radius / the caller's stop bound
		}
		if entry.obj >= 0 {
			if ws.visObjs[entry.obj] {
				continue
			}
			ws.visObjs[entry.obj] = true
			if o, ok := f.objects.Get(entry.obj); ok {
				res = append(res, Result{Object: o, Dist: d})
			}
			if k > 0 && len(res)-base >= k {
				break
			}
			continue
		}
		n := entry.node
		if ws.nodeVisited(n) {
			continue
		}
		ws.markNode(n)
		stats.NodesPopped++
		if err := lim.Stop(stats.NodesPopped); err != nil {
			// Abort with the valid prefix settled so far: by the Dijkstra
			// settling order everything already in res is final.
			stats.Truncated = true
			stopErr = err
			break
		}
		if watch != nil && watch.nodes[n] {
			watchDist[n] = d
		}

		// Object lookup at the settled node.
		for _, a := range ad.objectsAt(n, attr, chargeIO) {
			if !ws.visObjs[a.obj] {
				ws.pq.Push(queueEntry{obj: a.obj}, d+a.dist)
			}
		}

		// ChoosePath: walk the node's shortcut tree.
		f.choosePath(ad, ws, n, d, attr, chargeIO, watch, &stats)
	}

	if f.store != nil && chargeIO {
		stats.IO = f.store.Stats().Sub(ioMark)
	}
	return res, stats, stopErr
}

// choosePath implements Algorithm ChoosePath (Figure 10): depth-first over
// node n's shortcut tree; an Rnet whose abstract has no matching object is
// bypassed through n's shortcuts (when n is one of its borders), otherwise
// the walk descends, bottoming out at physical edges.
func (f *Framework) choosePath(ad *AssocDir, ws *queryWorkspace, n graph.NodeID, d float64, attr int32, chargeIO bool, watch *WatchSet, stats *QueryStats) {
	g := f.g
	// Rnet abstract verdicts are stable within one query; memoize them so
	// repeated ChoosePath calls don't re-probe the directory. An Rnet
	// holding a watched node must be descended even when object-free, or
	// the watched node would be hopped over and never settled.
	mayContain := func(r rnet.RnetID) bool {
		v, ok := ws.verdicts[r]
		if !ok {
			v = ad.rnetMayContain(r, attr, chargeIO) || (watch != nil && watch.rnets[r])
			ws.verdicts[r] = v
		}
		return v
	}
	var tree []*rnet.TreeNode
	if chargeIO {
		tree = f.ro.Visit(n)
	} else {
		tree = f.h.Tree(n)
	}
	stack := append(ws.stack[:0], tree...)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.IsBorder && !mayContain(s.Rnet) {
			// Bypass: jump to the Rnet's other border nodes.
			stats.RnetsBypassed++
			for _, sc := range f.h.ShortcutsFrom(s.Rnet, n) {
				if !ws.nodeVisited(sc.To) {
					ws.pq.Push(queueEntry{node: sc.To, obj: -1}, d+sc.Dist)
				}
			}
			continue
		}
		if len(s.Children) > 0 {
			stats.RnetsDescended++
			stack = append(stack, s.Children...)
			continue
		}
		// Leaf entry: expand physical edges.
		for _, half := range s.Edges {
			if !ws.nodeVisited(half.To) {
				ws.pq.Push(queueEntry{node: half.To, obj: -1}, d+g.Weight(half.Edge))
			}
		}
	}
	ws.stack = stack[:0]
}
