package core

import (
	"road/internal/graph"
	"road/internal/pqueue"
	"road/internal/rnet"
	"road/internal/storage"
)

// Query is an LDSQ: a query node plus an attribute predicate
// (Attr 0 matches any object).
type Query struct {
	Node graph.NodeID
	Attr int32
}

// Result is one answer object with its network distance from the query
// node.
type Result struct {
	Object graph.Object
	Dist   float64
}

// QueryStats reports the cost of one query execution.
type QueryStats struct {
	// NodesPopped counts settled network nodes (the traversal metric).
	NodesPopped int
	// RnetsBypassed counts Rnets skipped via shortcuts.
	RnetsBypassed int
	// RnetsDescended counts Rnet entries expanded because their abstract
	// matched the predicate.
	RnetsDescended int
	// IO holds the simulated page I/O incurred (zero when simulation off).
	IO storage.Stats
}

// queueEntry distinguishes node and object entries of the search queue
// (Algorithm kNNSearch keeps both in one priority queue).
type queueEntry struct {
	node graph.NodeID // valid when obj < 0
	obj  graph.ObjectID
}

// queryWorkspace holds per-query scratch state, reused across queries so
// steady-state searches allocate almost nothing. A Framework (and thus its
// workspace) is not safe for concurrent queries.
type queryWorkspace struct {
	pq        pqueue.Queue
	nodeEpoch []uint32
	epoch     uint32
	stack     []*rnet.TreeNode
	verdicts  map[rnet.RnetID]bool
	visObjs   map[graph.ObjectID]bool
}

func (f *Framework) workspace() *queryWorkspace {
	ws := f.qws
	if ws == nil {
		ws = &queryWorkspace{
			verdicts: make(map[rnet.RnetID]bool),
			visObjs:  make(map[graph.ObjectID]bool),
		}
		f.qws = ws
	}
	return ws
}

// prepare readies a workspace for one query: sizes the epoch array to the
// current node count and clears per-query state.
func (f *Framework) prepare(ws *queryWorkspace) {
	if len(ws.nodeEpoch) < f.g.NumNodes() {
		ws.nodeEpoch = make([]uint32, f.g.NumNodes())
		ws.epoch = 0
	}
	ws.epoch++
	if ws.epoch == 0 {
		for i := range ws.nodeEpoch {
			ws.nodeEpoch[i] = 0
		}
		ws.epoch = 1
	}
	ws.pq.Reset()
	clear(ws.verdicts)
	clear(ws.visObjs)
}

func (ws *queryWorkspace) nodeVisited(n graph.NodeID) bool { return ws.nodeEpoch[n] == ws.epoch }
func (ws *queryWorkspace) markNode(n graph.NodeID)         { ws.nodeEpoch[n] = ws.epoch }

// KNN returns the k objects matching q.Attr nearest to q.Node in network
// distance, closest first (Algorithm kNNSearch, Figure 9).
func (f *Framework) KNN(q Query, k int) ([]Result, QueryStats) {
	return f.KNNOn(f.ad, q, k)
}

// Range returns all objects matching q.Attr within network distance radius
// of q.Node, closest first (Algorithm RangeSearch).
func (f *Framework) Range(q Query, radius float64) ([]Result, QueryStats) {
	return f.RangeOn(f.ad, q, radius)
}

// KNNOn runs a kNN query against a specific Association Directory
// (supporting multiple object sets on one overlay).
func (f *Framework) KNNOn(ad *AssocDir, q Query, k int) ([]Result, QueryStats) {
	return f.search(ad, q, k, 0)
}

// RangeOn runs a range query against a specific Association Directory.
func (f *Framework) RangeOn(ad *AssocDir, q Query, radius float64) ([]Result, QueryStats) {
	return f.search(ad, q, 0, radius)
}

// search is the shared expansion entry point for the Framework's own
// single-threaded methods, with full I/O simulation.
func (f *Framework) search(ad *AssocDir, q Query, k int, radius float64) ([]Result, QueryStats) {
	return f.searchWith(ad, q, k, radius, f.workspace(), true)
}

// searchWith is the shared expansion: it gradually grows the search from
// the query node, looking up objects at settled nodes and choosing — per
// Rnet entry of each settled node's shortcut tree — between bypassing via
// shortcuts (no matching object inside) and descending (Figure 10). k>0
// selects kNN semantics; otherwise radius bounds a range query. chargeIO
// routes index accesses through the simulated page store; Sessions pass
// false so concurrent queries never touch shared buffer state.
func (f *Framework) searchWith(ad *AssocDir, q Query, k int, radius float64, ws *queryWorkspace, chargeIO bool) ([]Result, QueryStats) {
	var stats QueryStats
	var ioMark storage.Stats
	if f.store != nil && chargeIO {
		ioMark = f.store.Stats()
	}

	f.prepare(ws)
	var res []Result

	ws.pq.Push(queueEntry{node: q.Node, obj: -1}, 0)
	for ws.pq.Len() > 0 {
		item, _ := ws.pq.Pop()
		entry := item.Value.(queueEntry)
		d := item.Priority
		if k == 0 && d > radius {
			break // range satisfied: everything farther is out of range
		}
		if entry.obj >= 0 {
			if ws.visObjs[entry.obj] {
				continue
			}
			ws.visObjs[entry.obj] = true
			if o, ok := f.objects.Get(entry.obj); ok {
				res = append(res, Result{Object: o, Dist: d})
			}
			if k > 0 && len(res) >= k {
				break
			}
			continue
		}
		n := entry.node
		if ws.nodeVisited(n) {
			continue
		}
		ws.markNode(n)
		stats.NodesPopped++

		// Object lookup at the settled node.
		for _, a := range ad.objectsAt(n, q.Attr, chargeIO) {
			if !ws.visObjs[a.obj] {
				ws.pq.Push(queueEntry{obj: a.obj}, d+a.dist)
			}
		}

		// ChoosePath: walk the node's shortcut tree.
		f.choosePath(ad, ws, n, d, q.Attr, chargeIO, &stats)
	}

	if f.store != nil && chargeIO {
		stats.IO = f.store.Stats().Sub(ioMark)
	}
	return res, stats
}

// choosePath implements Algorithm ChoosePath (Figure 10): depth-first over
// node n's shortcut tree; an Rnet whose abstract has no matching object is
// bypassed through n's shortcuts (when n is one of its borders), otherwise
// the walk descends, bottoming out at physical edges.
func (f *Framework) choosePath(ad *AssocDir, ws *queryWorkspace, n graph.NodeID, d float64, attr int32, chargeIO bool, stats *QueryStats) {
	g := f.g
	// Rnet abstract verdicts are stable within one query; memoize them so
	// repeated ChoosePath calls don't re-probe the directory.
	mayContain := func(r rnet.RnetID) bool {
		v, ok := ws.verdicts[r]
		if !ok {
			v = ad.rnetMayContain(r, attr, chargeIO)
			ws.verdicts[r] = v
		}
		return v
	}
	var tree []*rnet.TreeNode
	if chargeIO {
		tree = f.ro.Visit(n)
	} else {
		tree = f.h.Tree(n)
	}
	stack := append(ws.stack[:0], tree...)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.IsBorder && !mayContain(s.Rnet) {
			// Bypass: jump to the Rnet's other border nodes.
			stats.RnetsBypassed++
			for _, sc := range f.h.ShortcutsFrom(s.Rnet, n) {
				if !ws.nodeVisited(sc.To) {
					ws.pq.Push(queueEntry{node: sc.To, obj: -1}, d+sc.Dist)
				}
			}
			continue
		}
		if len(s.Children) > 0 {
			stats.RnetsDescended++
			stack = append(stack, s.Children...)
			continue
		}
		// Leaf entry: expand physical edges.
		for _, half := range s.Edges {
			if !ws.nodeVisited(half.To) {
				ws.pq.Push(queueEntry{node: half.To, obj: -1}, d+g.Weight(half.Edge))
			}
		}
	}
	ws.stack = stack[:0]
}
