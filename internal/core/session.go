package core

import (
	"road/internal/graph"
	"road/internal/rnet"
	"sync"
)

// Session is a read-only query context over a built Framework. Unlike the
// Framework's own KNN/Range methods — which share one workspace and one
// simulated page buffer and are therefore single-threaded — any number of
// Sessions may run queries concurrently. Sessions run on the CSR hot path:
// flat slab traversal, typed heap, zero steady-state allocation, and no
// simulated I/O (QueryStats.IO stays zero); traversal statistics are still
// reported and match the report-mode reference exactly.
//
// Sessions must not run concurrently with maintenance operations (object
// or network updates) on the same Framework: queries are reads, updates
// are writes, and the framework does no internal locking between them.
type Session struct {
	f  *Framework
	ws *queryWorkspace
}

// UseReferencePath pins (or unpins) this session to the retained
// page-store reference implementation instead of the CSR slabs, still
// without I/O charging. The differential test harness and the hotpath
// benchmark use it to compare both paths in one process; serving code has
// no reason to call it.
func (s *Session) UseReferencePath(on bool) { s.ws.useRef = on }

// NewSession returns an independent concurrent query context. The first
// session construction eagerly materializes all per-node shortcut trees
// (they are otherwise built lazily, which would race).
func (f *Framework) NewSession() *Session {
	f.prewarm.Do(f.WarmTrees)
	return &Session{
		f: f,
		ws: &queryWorkspace{
			verdicts: make(map[rnet.RnetID]bool),
			visObjs:  make(map[graph.ObjectID]bool),
		},
	}
}

// KNN returns the k objects matching q.Attr nearest to q.Node.
func (s *Session) KNN(q Query, k int) ([]Result, QueryStats) {
	res, stats, _ := s.f.searchWith(s.f.ad, q, k, 0, s.ws, false, Limits{}, nil)
	return res, stats
}

// KNNAppend is KNN appending into dst — with a caller-reused buffer the
// steady-state query performs zero allocations (pinned by the
// allocation-regression tests).
func (s *Session) KNNAppend(dst []Result, q Query, k int) ([]Result, QueryStats) {
	res, stats, _ := s.f.searchWith(s.f.ad, q, k, 0, s.ws, false, Limits{}, dst)
	return res, stats
}

// KNNLimited is KNN under Limits (cooperative cancellation, traversal
// budget). The result is a valid prefix when err is non-nil. An optional
// positive maxRadius additionally stops the expansion at that distance.
func (s *Session) KNNLimited(q Query, k int, maxRadius float64, lim Limits) ([]Result, QueryStats, error) {
	return s.f.searchWith(s.f.ad, q, k, maxRadius, s.ws, false, lim, nil)
}

// Range returns all matching objects within radius of q.Node.
func (s *Session) Range(q Query, radius float64) ([]Result, QueryStats) {
	res, stats, _ := s.f.searchWith(s.f.ad, q, 0, radius, s.ws, false, Limits{}, nil)
	return res, stats
}

// RangeAppend is Range appending into dst (see KNNAppend).
func (s *Session) RangeAppend(dst []Result, q Query, radius float64) ([]Result, QueryStats) {
	res, stats, _ := s.f.searchWith(s.f.ad, q, 0, radius, s.ws, false, Limits{}, dst)
	return res, stats
}

// RangeLimited is Range under Limits.
func (s *Session) RangeLimited(q Query, radius float64, lim Limits) ([]Result, QueryStats, error) {
	return s.f.searchWith(s.f.ad, q, 0, radius, s.ws, false, lim, nil)
}

// SearchSeeded runs one multi-source search: kNN when k > 0, range search
// bounded by radius when k == 0. Seeds enter the expansion at their own
// accumulated distances, and when watch is non-nil the exact settled
// distance of every watched node the search reaches is written into
// watchDist (which the caller owns — a WatchSet itself is shareable across
// sessions, per-query outputs are not). This is the primitive the sharding
// router drives: the home shard is searched with its border nodes watched,
// neighbouring shards are searched seeded at their borders.
func (s *Session) SearchSeeded(seeds []Seed, attr int32, k int, radius float64, watch *WatchSet, watchDist map[graph.NodeID]float64) ([]Result, QueryStats) {
	res, stats, _ := s.f.searchSeeded(s.f.ad, seeds, attr, k, radius, s.ws, false, watch, watchDist, Limits{}, nil)
	return res, stats
}

// SearchSeededLimited is SearchSeeded under Limits — the primitive the
// sharding router drives when a per-request context or budget is in play.
func (s *Session) SearchSeededLimited(seeds []Seed, attr int32, k int, radius float64, watch *WatchSet, watchDist map[graph.NodeID]float64, lim Limits) ([]Result, QueryStats, error) {
	return s.f.searchSeeded(s.f.ad, seeds, attr, k, radius, s.ws, false, watch, watchDist, lim, nil)
}

// PathTo computes the detailed shortest route from q.Node to an object
// (see Framework.PathTo). Unlike the Framework variant it runs on the CSR
// hot path and bypasses the simulated page store, so any number of
// sessions may compute paths concurrently. Requires the framework to have
// been built with StorePaths.
func (s *Session) PathTo(q Query, target graph.ObjectID) ([]graph.NodeID, float64, error) {
	path, dist, _, err := s.path(q, target, Limits{})
	return path, dist, err
}

// PathToLimited is PathTo under Limits, reporting traversal statistics
// (which the plain variant predates and omits).
func (s *Session) PathToLimited(q Query, target graph.ObjectID, lim Limits) ([]graph.NodeID, float64, QueryStats, error) {
	return s.path(q, target, lim)
}

// path dispatches a session path query to the CSR implementation or, when
// the session is pinned to the reference path, the retained one.
func (s *Session) path(q Query, target graph.ObjectID, lim Limits) ([]graph.NodeID, float64, QueryStats, error) {
	if s.ws.useRef {
		return s.f.pathTo(q, target, false, lim)
	}
	return s.f.pathCSR(q, target, s.ws, lim)
}

// Epoch returns the owning framework's maintenance epoch at the time of
// the call — a fence for detecting index mutations between two queries.
func (s *Session) Epoch() uint64 { return s.f.Epoch() }

// prewarmOnce is the type of Framework.prewarm.
type prewarmOnce = sync.Once
