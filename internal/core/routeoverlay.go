package core

import (
	"road/internal/btree"
	"road/internal/graph"
	"road/internal/rnet"
	"road/internal/storage"
)

// RouteOverlay is the network-side index (§3.4): a B+-tree keyed by node
// ID whose leaf entries lead to each node's shortcut tree — the flattened
// representation of the Rnet hierarchy that lets a traversal switch
// between physical edges and shortcuts without ever leaving one structure.
// The actual tree and shortcut data live in the Hierarchy; RouteOverlay
// adds the paged-index simulation so queries are charged realistic I/O.
type RouteOverlay struct {
	h      *rnet.Hierarchy
	index  *btree.Tree[int32]
	layout *storage.Layout
	store  *storage.Store
	// order is the Hilbert/CCAM record clustering order node entries were
	// laid out in. Cached so snapshots export it without re-ranking every
	// coordinate under the serving layer's write lock.
	order []graph.NodeID
}

// NewRouteOverlay wraps hierarchy h; store may be nil to skip I/O
// simulation. Node records are laid out in Hilbert order (CCAM-style
// clustering [18]) sized by shortcut-tree and shortcut payload.
func NewRouteOverlay(h *rnet.Hierarchy, store *storage.Store) *RouteOverlay {
	ro := &RouteOverlay{
		h:     h,
		index: btree.New[int32](btree.DefaultOrder),
		store: store,
	}
	if store != nil {
		ro.layout = storage.NewLayout(store)
		ro.index.OnAccess = func(id int64) { store.Read(roIndexPageBase - storage.PageID(id)) }
	}
	g := h.Graph()
	ro.order = storage.ClusterNodes(g)
	for _, n := range ro.order {
		ro.index.Put(int64(n), 0)
		if ro.layout != nil {
			ro.layout.Place(int64(n), ro.nodeRecordSize(n))
			ro.layout.Write(int64(n))
		}
	}
	return ro
}

// nodeRecordSize estimates the stored size of node n's entry: its shortcut
// tree plus all shortcuts departing n.
func (ro *RouteOverlay) nodeRecordSize(n graph.NodeID) int {
	size := ro.h.TreeSizeBytes(n)
	var walk func(tn *rnet.TreeNode)
	walk = func(tn *rnet.TreeNode) {
		if tn.IsBorder {
			for _, sc := range ro.h.ShortcutsFrom(tn.Rnet, n) {
				size += 16 + 4*len(sc.Via)
			}
		}
		for _, c := range tn.Children {
			walk(c)
		}
	}
	for _, top := range ro.h.Tree(n) {
		walk(top)
	}
	return size
}

// Visit charges the I/O of loading node n's entry (B+-tree descent plus
// the shortcut-tree record) and returns the node's shortcut tree.
func (ro *RouteOverlay) Visit(n graph.NodeID) []*rnet.TreeNode {
	ro.index.Get(int64(n))
	if ro.layout != nil {
		ro.layout.Read(int64(n))
	}
	return ro.h.Tree(n)
}

// SizeBytes estimates the Route Overlay's storage footprint: the
// hierarchy's Rnet/shortcut data plus per-node shortcut-tree records.
func (ro *RouteOverlay) SizeBytes() int64 {
	total := ro.h.SizeBytes()
	g := ro.h.Graph()
	for n := 0; n < g.NumNodes(); n++ {
		total += int64(ro.h.TreeSizeBytes(graph.NodeID(n)))
	}
	return total
}
