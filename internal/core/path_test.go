package core

import (
	"math"
	"math/rand"
	"testing"

	"road/internal/dataset"
	"road/internal/graph"
	"road/internal/rnet"
)

func pathFixture(t *testing.T, seed int64) (*Framework, *graph.Graph, *graph.ObjectSet) {
	t.Helper()
	g := dataset.MustGenerate(dataset.Spec{Name: "p", Nodes: 400, Edges: 460, Seed: seed})
	objects := dataset.PlaceUniform(g, 20, seed+1, 0, 7)
	f, err := Build(g, objects, Config{Rnet: rnet.Config{
		Fanout: 4, Levels: 3, KLPasses: -1, PruneMaxBorders: 32, StorePaths: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return f, g, objects
}

// verifyPath checks a returned path is a real walk ending at an endpoint
// of the object's edge, whose length plus the object offset equals dist.
func verifyPath(t *testing.T, g *graph.Graph, o graph.Object, from graph.NodeID, path []graph.NodeID, dist float64) {
	t.Helper()
	if len(path) == 0 {
		t.Fatal("empty path")
	}
	if path[0] != from {
		t.Fatalf("path starts at %d, want %d", path[0], from)
	}
	var walked float64
	for i := 1; i < len(path); i++ {
		e := g.EdgeBetween(path[i-1], path[i])
		if e == graph.NoEdge {
			t.Fatalf("path hop %d->%d is not an edge", path[i-1], path[i])
		}
		walked += g.Weight(e)
	}
	end := path[len(path)-1]
	ed := g.Edge(o.Edge)
	var offset float64
	switch end {
	case ed.U:
		offset = o.DU
	case ed.V:
		offset = o.DV
	default:
		t.Fatalf("path ends at %d, not an endpoint of object edge (%d,%d)", end, ed.U, ed.V)
	}
	if math.Abs(walked+offset-dist) > 1e-9*math.Max(1, dist) {
		t.Fatalf("path length %g + offset %g != reported dist %g", walked, offset, dist)
	}
}

func TestPathToMatchesKNNDistance(t *testing.T) {
	f, g, _ := pathFixture(t, 1)
	for _, qn := range dataset.RandomNodes(g, 25, 2) {
		q := Query{Node: qn}
		res, _ := f.KNN(q, 3)
		for _, r := range res {
			path, dist, err := f.PathTo(q, r.Object.ID)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(dist-r.Dist) > 1e-9*math.Max(1, r.Dist) {
				t.Fatalf("PathTo dist %g != KNN dist %g", dist, r.Dist)
			}
			verifyPath(t, g, r.Object, qn, path, dist)
		}
	}
}

func TestPathToFarObject(t *testing.T) {
	// Specifically exercise long paths that must cross bypassed regions
	// (few objects -> many bypasses -> shortcut expansion on the way back).
	g := dataset.MustGenerate(dataset.Spec{Name: "p", Nodes: 2000, Edges: 2300, Seed: 3})
	objects := dataset.PlaceUniform(g, 3, 4)
	f, err := Build(g, objects, Config{Rnet: rnet.Config{
		Fanout: 4, Levels: 4, KLPasses: -1, PruneMaxBorders: 32, StorePaths: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	s := graph.NewSearch(g)
	for _, qn := range dataset.RandomNodes(g, 10, 5) {
		q := Query{Node: qn}
		res, _ := f.KNN(q, 1)
		if len(res) == 0 {
			continue
		}
		path, dist, err := f.PathTo(q, res[0].Object.ID)
		if err != nil {
			t.Fatal(err)
		}
		verifyPath(t, g, res[0].Object, qn, path, dist)
		// The path must be shortest: its node-to-endpoint walk equals the
		// Dijkstra distance.
		end := path[len(path)-1]
		if want := s.ShortestDist(qn, end); math.Abs(want-(dist-offsetAt(g, res[0].Object, end))) > 1e-9*math.Max(1, want) {
			t.Fatalf("path to %d not shortest: %g vs %g", end, dist, want)
		}
	}
}

func offsetAt(g *graph.Graph, o graph.Object, n graph.NodeID) float64 {
	if g.Edge(o.Edge).U == n {
		return o.DU
	}
	return o.DV
}

func TestPathToErrors(t *testing.T) {
	f, _, objects := pathFixture(t, 6)
	if _, _, err := f.PathTo(Query{Node: 0}, 9999); err == nil {
		t.Fatal("missing object accepted")
	}
	o := objects.All()[0]
	if _, _, err := f.PathTo(Query{Node: 0, Attr: 42}, o.ID); err == nil && o.Attr != 42 {
		t.Fatal("attribute mismatch accepted")
	}
	// Without StorePaths the call must fail cleanly.
	g2 := dataset.MustGenerate(dataset.Spec{Name: "p", Nodes: 100, Edges: 120, Seed: 7})
	obj2 := dataset.PlaceUniform(g2, 3, 8)
	f2, err := Build(g2, obj2, Config{Rnet: rnet.Config{Fanout: 2, Levels: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f2.PathTo(Query{Node: 0}, obj2.All()[0].ID); err == nil {
		t.Fatal("PathTo without StorePaths accepted")
	}
}

func TestExpandShortcutAllLevels(t *testing.T) {
	g := dataset.MustGenerate(dataset.Spec{Name: "p", Nodes: 600, Edges: 700, Seed: 9})
	h, err := rnet.Build(g, rnet.Config{Fanout: 4, Levels: 3, KLPasses: -1, StorePaths: true, PruneMaxBorders: 32})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	checked := 0
	for level := 1; level <= 3; level++ {
		for _, id := range h.AtLevel(level) {
			for _, b := range h.Rnet(id).Borders {
				for _, sc := range h.ShortcutsFrom(id, b) {
					if rng.Intn(5) != 0 {
						continue
					}
					path, err := h.ExpandShortcut(id, sc)
					if err != nil {
						t.Fatalf("level %d: %v", level, err)
					}
					if path[0] != sc.From || path[len(path)-1] != sc.To {
						t.Fatalf("expanded path endpoints %d..%d, want %d..%d",
							path[0], path[len(path)-1], sc.From, sc.To)
					}
					var total float64
					for i := 1; i < len(path); i++ {
						e := g.EdgeBetween(path[i-1], path[i])
						if e == graph.NoEdge {
							t.Fatalf("expanded hop %d->%d not an edge", path[i-1], path[i])
						}
						total += g.Weight(e)
					}
					if math.Abs(total-sc.Dist) > 1e-9*math.Max(1, sc.Dist) {
						t.Fatalf("expanded length %g != shortcut dist %g", total, sc.Dist)
					}
					checked++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no shortcuts expanded; test vacuous")
	}
}
