package core

import (
	"fmt"
	"sort"
	"time"

	"road/internal/btree"
	"road/internal/graph"
	"road/internal/rnet"
	"road/internal/storage"
)

// AssocDirState is the explicit, serializable form of an Association
// Directory: per-node object associations and per-Rnet abstract counts.
// The exact per-attribute counts are the directory's ground truth — the
// Bloom filter (AbstractBloom) and the simulated B+-tree/page layout are
// derived from them on restore.
type AssocDirState struct {
	Kind      AbstractKind
	Nodes     []NodeAssocState
	Abstracts []AbstractState
}

// NodeAssocState is one node's association list, in stored (object-ID)
// order.
type NodeAssocState struct {
	Node   graph.NodeID
	Assocs []ObjAssocState
}

// ObjAssocState is one object association: the object, its distance from
// the node, and its attribute.
type ObjAssocState struct {
	Obj  graph.ObjectID
	Dist float64
	Attr int32
}

// AbstractState is one Rnet's abstract: exact per-attribute counts.
type AbstractState struct {
	Rnet   rnet.RnetID
	Counts []AttrCount
}

// AttrCount is one attribute category's object count inside an Rnet.
type AttrCount struct {
	Attr  int32
	Count int32
}

// ExportState captures the directory for snapshotting, with deterministic
// (sorted) ordering so identical directories serialize identically.
func (ad *AssocDir) ExportState() *AssocDirState {
	st := &AssocDirState{Kind: ad.kind}
	// The dense entry arrays are indexed by ID, so ascending iteration is
	// already the deterministic (sorted) order.
	for n, list := range ad.byNode {
		if len(list) == 0 {
			continue
		}
		entry := NodeAssocState{Node: graph.NodeID(n), Assocs: make([]ObjAssocState, len(list))}
		for i, a := range list {
			entry.Assocs[i] = ObjAssocState{Obj: a.obj, Dist: a.dist, Attr: a.attr}
		}
		st.Nodes = append(st.Nodes, entry)
	}
	for r, a := range ad.abstracts {
		if a == nil {
			continue
		}
		attrs := make([]int32, 0, len(a.counts))
		for attr := range a.counts {
			attrs = append(attrs, attr)
		}
		sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
		entry := AbstractState{Rnet: rnet.RnetID(r)}
		for _, attr := range attrs {
			entry.Counts = append(entry.Counts, AttrCount{Attr: attr, Count: int32(a.counts[attr])})
		}
		st.Abstracts = append(st.Abstracts, entry)
	}
	return st
}

// RestoreAssocDir reassembles a directory over h and set from exported
// state, rebuilding the derived pieces (Bloom filters, simulated B+-tree)
// and validating every reference against the object set. With a store,
// layout must carry the exported page layout (the record placement that
// accumulated over the directory's insertion history).
func RestoreAssocDir(h *rnet.Hierarchy, set *graph.ObjectSet, store *storage.Store, layout *storage.LayoutState, st *AssocDirState) (*AssocDir, error) {
	switch st.Kind {
	case AbstractSet, AbstractCount, AbstractBloom:
	default:
		return nil, fmt.Errorf("core: state: unknown abstract kind %d", st.Kind)
	}
	ad := &AssocDir{
		h:         h,
		kind:      st.Kind,
		byNode:    make([][]objAssoc, h.Graph().NumNodes()),
		abstracts: make([]*abstractRec, h.NumRnets()),
		index:     newAssocIndex(store),
		store:     store,
	}
	if store != nil {
		if layout == nil {
			return nil, fmt.Errorf("core: state: directory page layout missing")
		}
		restored, err := storage.RestoreLayout(store, layout)
		if err != nil {
			return nil, fmt.Errorf("core: state: directory layout: %w", err)
		}
		ad.layout = restored
	}
	g := h.Graph()
	for _, entry := range st.Nodes {
		if entry.Node < 0 || int(entry.Node) >= g.NumNodes() {
			return nil, fmt.Errorf("core: state: association node %d out of range", entry.Node)
		}
		if len(entry.Assocs) == 0 {
			return nil, fmt.Errorf("core: state: empty association list for node %d", entry.Node)
		}
		if len(ad.byNode[entry.Node]) != 0 {
			return nil, fmt.Errorf("core: state: duplicate association node %d", entry.Node)
		}
		list := make([]objAssoc, len(entry.Assocs))
		for i, a := range entry.Assocs {
			if _, ok := set.Get(a.Obj); !ok {
				return nil, fmt.Errorf("core: state: node %d references unknown object %d", entry.Node, a.Obj)
			}
			if !(a.Dist >= 0) {
				return nil, fmt.Errorf("core: state: node %d object %d distance %v invalid", entry.Node, a.Obj, a.Dist)
			}
			list[i] = objAssoc{obj: a.Obj, dist: a.Dist, attr: a.Attr}
		}
		ad.byNode[entry.Node] = list
	}
	for _, entry := range st.Abstracts {
		if entry.Rnet < 0 || int(entry.Rnet) >= h.NumRnets() {
			return nil, fmt.Errorf("core: state: abstract Rnet %d out of range", entry.Rnet)
		}
		if ad.abstracts[entry.Rnet] != nil {
			return nil, fmt.Errorf("core: state: duplicate abstract for Rnet %d", entry.Rnet)
		}
		a := newAbstractRec(st.Kind)
		for _, c := range entry.Counts {
			if c.Count <= 0 {
				return nil, fmt.Errorf("core: state: Rnet %d attr %d count %d invalid", entry.Rnet, c.Attr, c.Count)
			}
			a.counts[c.Attr] = int(c.Count)
			a.total += int(c.Count)
			if a.filter != nil {
				a.filter.Add(uint64(uint32(c.Attr)))
			}
		}
		if a.total == 0 {
			return nil, fmt.Errorf("core: state: empty abstract for Rnet %d", entry.Rnet)
		}
		ad.abstracts[entry.Rnet] = a
	}
	// Rebuild the simulated B+-tree over the restored keys in sorted order
	// (node keys first, then Rnet keys — the same disjoint key ranges the
	// live directory uses). Record pages were restored wholesale above, so
	// only the index itself is repopulated; each key must already have its
	// record placed.
	for i, list := range ad.byNode {
		if len(list) == 0 {
			continue
		}
		n := graph.NodeID(i)
		if ad.layout != nil && !ad.layout.Has(nodeKey(n)) {
			return nil, fmt.Errorf("core: state: node %d has no placed record", n)
		}
		ad.index.Put(nodeKey(n), 0)
	}
	for i, a := range ad.abstracts {
		if a == nil {
			continue
		}
		r := rnet.RnetID(i)
		if ad.layout != nil && !ad.layout.Has(rnetKey(r)) {
			return nil, fmt.Errorf("core: state: Rnet %d abstract has no placed record", r)
		}
		ad.index.Put(rnetKey(r), 0)
	}
	return ad, nil
}

// newAssocIndex builds the simulated B+-tree with the same page-charging
// hook NewAssocDir installs.
func newAssocIndex(store *storage.Store) *btree.Tree[int32] {
	idx := btree.New[int32](btree.DefaultOrder)
	if store != nil {
		idx.OnAccess = func(id int64) { store.Read(adIndexPageBase - storage.PageID(id)) }
	}
	return idx
}

// RestoreRouteOverlay reassembles the overlay over h without walking any
// shortcut trees: the simulated B+-tree is repopulated in the recorded
// cluster (Hilbert) order — re-deriving it would re-rank and re-sort
// every coordinate — and the page layout, whose record sizes would
// otherwise force every tree to materialize, is restored from exported
// state. Trees stay lazy; WarmTrees (or the first session) builds them.
func RestoreRouteOverlay(h *rnet.Hierarchy, store *storage.Store, layout *storage.LayoutState, order []graph.NodeID) (*RouteOverlay, error) {
	ro := &RouteOverlay{
		h:     h,
		index: btree.New[int32](btree.DefaultOrder),
		store: store,
	}
	if store != nil {
		if layout == nil {
			return nil, fmt.Errorf("core: state: overlay page layout missing")
		}
		restored, err := storage.RestoreLayout(store, layout)
		if err != nil {
			return nil, fmt.Errorf("core: state: overlay layout: %w", err)
		}
		ro.layout = restored
		ro.index.OnAccess = func(id int64) { store.Read(roIndexPageBase - storage.PageID(id)) }
	}
	g := h.Graph()
	if len(order) != g.NumNodes() {
		return nil, fmt.Errorf("core: state: overlay order covers %d of %d nodes", len(order), g.NumNodes())
	}
	seen := make([]bool, g.NumNodes())
	for _, n := range order {
		if n < 0 || int(n) >= g.NumNodes() || seen[n] {
			return nil, fmt.Errorf("core: state: overlay order is not a node permutation (node %d)", n)
		}
		seen[n] = true
		if ro.layout != nil && !ro.layout.Has(int64(n)) {
			return nil, fmt.Errorf("core: state: node %d has no placed overlay record", n)
		}
		ro.index.Put(int64(n), 0)
	}
	ro.order = order
	return ro, nil
}

// RestoreSpec carries the decoded pieces of a snapshot, ready to be
// reassembled into a live Framework.
type RestoreSpec struct {
	Graph     *graph.Graph
	Objects   *graph.ObjectSet
	Hierarchy *rnet.Hierarchy
	Dir       *AssocDirState
	// BufferPages sizes the rebuilt simulated page store; negative
	// disables simulation (mirrors Config.BufferPages, but with the
	// resolved capacity, never 0). When non-negative, StoreAllocated and
	// both layout states must carry the exported page bookkeeping.
	BufferPages    int
	StoreAllocated storage.PageID
	OverlayLayout  *storage.LayoutState
	DirLayout      *storage.LayoutState
	// OverlayOrder is the node order overlay records were laid out in
	// (Hilbert/CCAM clustering at build time). Empty selects a fresh
	// ClusterNodes computation.
	OverlayOrder []graph.NodeID
	Epoch        uint64
	BuildTime    time.Duration
}

// Restore reassembles a Framework from snapshot state: the simulated page
// store and both index layouts are restored exactly, the Route Overlay
// and Association Directory are reconstructed around them, and the
// maintenance epoch resumes where the snapshotted instance left off.
func Restore(spec RestoreSpec) (*Framework, error) {
	if spec.Graph == nil || spec.Objects == nil || spec.Hierarchy == nil || spec.Dir == nil {
		return nil, fmt.Errorf("core: restore: incomplete spec")
	}
	var store *storage.Store
	if spec.BufferPages >= 0 {
		store = storage.NewStore(spec.BufferPages)
		store.SetAllocated(spec.StoreAllocated)
	}
	ad, err := RestoreAssocDir(spec.Hierarchy, spec.Objects, store, spec.DirLayout, spec.Dir)
	if err != nil {
		return nil, err
	}
	order := spec.OverlayOrder
	if len(order) == 0 {
		order = storage.ClusterNodes(spec.Graph)
	}
	ro, err := RestoreRouteOverlay(spec.Hierarchy, store, spec.OverlayLayout, order)
	if err != nil {
		return nil, err
	}
	f := &Framework{
		g:       spec.Graph,
		h:       spec.Hierarchy,
		objects: spec.Objects,
		store:   store,
		ad:      ad,
		ro:      ro,
		// The CSR index is derived state: snapshots don't carry it, the
		// first WarmTrees (or session prewarm) rebuilds it from the
		// restored hierarchy.
		csr:       &csrBox{},
		BuildTime: spec.BuildTime,
	}
	f.epoch.Store(spec.Epoch)
	return f, nil
}

// ExportLayouts returns the overlay and directory page-layout states plus
// the store's allocation watermark (zeros/nils when I/O simulation is
// disabled), for snapshotting.
func (f *Framework) ExportLayouts() (allocated storage.PageID, overlay, dir *storage.LayoutState) {
	if f.store == nil {
		return 0, nil, nil
	}
	return f.store.Allocated(), f.ro.layout.ExportState(), f.ad.layout.ExportState()
}

// OverlayOrder returns the record clustering order overlay entries were
// laid out in, recomputing only if nodes were added since (snapshots call
// this under the serving layer's write lock, where an O(n log n) re-rank
// would stall every reader).
func (f *Framework) OverlayOrder() []graph.NodeID {
	if len(f.ro.order) != f.g.NumNodes() {
		f.ro.order = storage.ClusterNodes(f.g)
	}
	return f.ro.order
}

// BufferPages reports the framework's simulated-store capacity in pages,
// or -1 when I/O simulation is disabled; snapshots record it so a restore
// rebuilds an equivalently configured store.
func (f *Framework) BufferPages() int {
	if f.store == nil {
		return -1
	}
	return f.store.Capacity()
}
