package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"road/internal/dataset"
	"road/internal/graph"
	"road/internal/rnet"
)

// bruteKNN computes ground-truth kNN by full Dijkstra from the query node:
// an object's distance is min over its edge's endpoints of node distance
// plus offset (§3.1).
func bruteKNN(g *graph.Graph, objects *graph.ObjectSet, q Query, k int) []Result {
	all := bruteAll(g, objects, q)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func bruteRange(g *graph.Graph, objects *graph.ObjectSet, q Query, radius float64) []Result {
	all := bruteAll(g, objects, q)
	out := []Result{}
	for _, r := range all {
		if r.Dist <= radius {
			out = append(out, r)
		}
	}
	return out
}

func bruteAll(g *graph.Graph, objects *graph.ObjectSet, q Query) []Result {
	s := graph.NewSearch(g)
	s.Run(q.Node, graph.Options{})
	var out []Result
	for _, o := range objects.All() {
		if q.Attr != 0 && o.Attr != q.Attr {
			continue
		}
		e := g.Edge(o.Edge)
		if e.Removed {
			continue
		}
		d := math.Inf(1)
		if du := s.Dist(e.U); !math.IsInf(du, 1) {
			d = du + o.DU
		}
		if dv := s.Dist(e.V); !math.IsInf(dv, 1) && dv+o.DV < d {
			d = dv + o.DV
		}
		if !math.IsInf(d, 1) {
			out = append(out, Result{Object: o, Dist: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Object.ID < out[j].Object.ID
	})
	return out
}

func fixture(t testing.TB, nodes, edges, objs int, seed int64, cfg Config) (*Framework, *graph.Graph, *graph.ObjectSet) {
	t.Helper()
	g := dataset.MustGenerate(dataset.Spec{Name: "t", Nodes: nodes, Edges: edges, Seed: seed})
	objects := dataset.PlaceUniform(g, objs, seed+1, 0, 7, 9)
	f, err := Build(g, objects, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, g, objects
}

func defaultCfg() Config {
	return Config{Rnet: rnet.Config{Fanout: 4, Levels: 3, KLPasses: -1, PruneMaxBorders: 32}}
}

// resultsMatch compares result lists by (distance, multiset of IDs at each
// distance) — ties may legitimately reorder.
func resultsMatch(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i].Dist-b[i].Dist) > 1e-9*math.Max(1, a[i].Dist) {
			return false
		}
	}
	// IDs as multisets (order can differ within distance ties).
	ids := func(rs []Result) []int32 {
		out := make([]int32, len(rs))
		for i, r := range rs {
			out[i] = r.Object.ID
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	ia, ib := ids(a), ids(b)
	for i := range ia {
		if ia[i] != ib[i] {
			// Allow swaps only when distances tie; since sorted distance
			// lists already matched, differing ID multisets on tied
			// distances are still acceptable — check distances per ID.
			return tiedIDsEquivalent(a, b)
		}
	}
	return true
}

func tiedIDsEquivalent(a, b []Result) bool {
	da := map[int32]float64{}
	for _, r := range a {
		da[r.Object.ID] = r.Dist
	}
	for _, r := range b {
		if d, ok := da[r.Object.ID]; ok && math.Abs(d-r.Dist) > 1e-9 {
			return false
		}
	}
	// Boundary ties (k-th place) can pick different objects; accept when
	// the last distances agree.
	return math.Abs(a[len(a)-1].Dist-b[len(b)-1].Dist) <= 1e-9*math.Max(1, a[len(a)-1].Dist)
}

func TestKNNMatchesBruteForce(t *testing.T) {
	f, g, objects := fixture(t, 400, 460, 25, 1, defaultCfg())
	qs := dataset.RandomNodes(g, 40, 2)
	for _, qn := range qs {
		for _, k := range []int{1, 3, 10} {
			q := Query{Node: qn}
			got, _ := f.KNN(q, k)
			want := bruteKNN(g, objects, q, k)
			if !resultsMatch(got, want) {
				t.Fatalf("KNN(%d, k=%d):\n got %v\nwant %v", qn, k, got, want)
			}
		}
	}
}

func TestKNNWithAttributePredicate(t *testing.T) {
	f, g, objects := fixture(t, 400, 460, 30, 3, defaultCfg())
	qs := dataset.RandomNodes(g, 25, 4)
	for _, qn := range qs {
		q := Query{Node: qn, Attr: 7}
		got, _ := f.KNN(q, 5)
		want := bruteKNN(g, objects, q, 5)
		if !resultsMatch(got, want) {
			t.Fatalf("attr KNN(%d): got %v want %v", qn, got, want)
		}
		for _, r := range got {
			if r.Object.Attr != 7 {
				t.Fatalf("predicate violated: object %d attr %d", r.Object.ID, r.Object.Attr)
			}
		}
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	f, g, objects := fixture(t, 400, 460, 25, 5, defaultCfg())
	diam := g.EstimateDiameter()
	qs := dataset.RandomNodes(g, 30, 6)
	for _, qn := range qs {
		for _, frac := range []float64{0.05, 0.1, 0.2} {
			q := Query{Node: qn}
			r := diam * frac
			got, _ := f.Range(q, r)
			want := bruteRange(g, objects, q, r)
			if !resultsMatch(got, want) {
				t.Fatalf("Range(%d, r=%g): got %d results want %d", qn, r, len(got), len(want))
			}
		}
	}
}

func TestKNNMoreThanAvailable(t *testing.T) {
	f, g, objects := fixture(t, 200, 230, 5, 7, defaultCfg())
	q := Query{Node: dataset.RandomNodes(g, 1, 8)[0]}
	got, _ := f.KNN(q, 50)
	if len(got) != objects.Len() {
		t.Fatalf("asked 50 of %d objects, got %d", objects.Len(), len(got))
	}
}

func TestRangeZeroRadius(t *testing.T) {
	f, _, _ := fixture(t, 200, 230, 20, 9, defaultCfg())
	got, _ := f.Range(Query{Node: 0}, 0)
	// Only objects at distance exactly 0 (offset 0 on an incident edge).
	for _, r := range got {
		if r.Dist != 0 {
			t.Fatalf("zero-radius range returned dist %g", r.Dist)
		}
	}
}

func TestResultsSortedByDistance(t *testing.T) {
	f, g, _ := fixture(t, 300, 350, 40, 10, defaultCfg())
	for _, qn := range dataset.RandomNodes(g, 10, 11) {
		got, _ := f.KNN(Query{Node: qn}, 10)
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatal("kNN results not sorted by distance")
			}
		}
	}
}

func TestSearchBypassesEmptyRnets(t *testing.T) {
	// With very few objects, most Rnets are empty: queries must record
	// bypasses and settle far fewer nodes than the network has.
	f, g, _ := fixture(t, 2500, 2800, 3, 12, defaultCfg())
	var bypassed, popped int
	for _, qn := range dataset.RandomNodes(g, 20, 13) {
		_, st := f.KNN(Query{Node: qn}, 1)
		bypassed += st.RnetsBypassed
		popped += st.NodesPopped
	}
	if bypassed == 0 {
		t.Fatal("search never bypassed an Rnet despite sparse objects")
	}
	if popped >= 20*g.NumNodes()/2 {
		t.Fatalf("search settled %d nodes over 20 queries; pruning ineffective", popped)
	}
}

func TestSearchPruningBeatsPlainExpansionOnVisits(t *testing.T) {
	// ROAD's settled-node count must be well below a plain Dijkstra that
	// stops at the same result distance.
	f, g, objects := fixture(t, 2500, 2800, 5, 14, defaultCfg())
	s := graph.NewSearch(g)
	var roadTotal, plainTotal int
	for _, qn := range dataset.RandomNodes(g, 15, 15) {
		res, st := f.KNN(Query{Node: qn}, 1)
		if len(res) == 0 {
			continue
		}
		roadTotal += st.NodesPopped
		s.Run(qn, graph.Options{MaxDist: res[0].Dist})
		plainTotal += s.Visited
	}
	_ = objects
	if roadTotal >= plainTotal {
		t.Fatalf("ROAD settled %d nodes, plain expansion %d — no pruning benefit", roadTotal, plainTotal)
	}
}

func TestQueryStatsIO(t *testing.T) {
	f, g, _ := fixture(t, 400, 460, 20, 16, defaultCfg())
	f.DropCache()
	_, st := f.KNN(Query{Node: dataset.RandomNodes(g, 1, 17)[0]}, 5)
	if st.IO.Reads == 0 {
		t.Fatal("no simulated reads recorded")
	}
	if st.IO.Faults == 0 {
		t.Fatal("cold-cache query recorded no faults")
	}
}

func TestIOSimulationDisabled(t *testing.T) {
	cfg := defaultCfg()
	cfg.BufferPages = -1
	f, g, objects := fixture(t, 300, 350, 15, 18, cfg)
	q := Query{Node: dataset.RandomNodes(g, 1, 19)[0]}
	got, st := f.KNN(q, 3)
	want := bruteKNN(g, objects, q, 3)
	if !resultsMatch(got, want) {
		t.Fatal("results wrong with I/O simulation disabled")
	}
	if st.IO.Reads != 0 {
		t.Fatal("I/O recorded while disabled")
	}
	if f.Store() != nil {
		t.Fatal("store present while disabled")
	}
}

func TestAllAbstractKindsAgree(t *testing.T) {
	g := dataset.MustGenerate(dataset.Spec{Name: "t", Nodes: 400, Edges: 460, Seed: 20})
	objects := dataset.PlaceUniform(g, 30, 21, 0, 7, 9)
	qs := dataset.RandomNodes(g, 20, 22)
	var baseline [][]Result
	for _, kind := range []AbstractKind{AbstractSet, AbstractCount, AbstractBloom} {
		cfg := defaultCfg()
		cfg.Abstract = kind
		f, err := Build(g, objects, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var results [][]Result
		for _, qn := range qs {
			got, _ := f.KNN(Query{Node: qn, Attr: 7}, 5)
			results = append(results, got)
		}
		if baseline == nil {
			baseline = results
			continue
		}
		for i := range results {
			if !resultsMatch(results[i], baseline[i]) {
				t.Fatalf("kind %v disagrees with set abstract on query %d", kind, i)
			}
		}
	}
}

func TestAbstractKindSizesOrdered(t *testing.T) {
	g := dataset.MustGenerate(dataset.Spec{Name: "t", Nodes: 400, Edges: 460, Seed: 23})
	objects := dataset.PlaceUniform(g, 200, 24, 1, 2, 3, 4, 5, 6, 7, 8)
	sizes := map[AbstractKind]int64{}
	for _, kind := range []AbstractKind{AbstractSet, AbstractCount, AbstractBloom} {
		cfg := defaultCfg()
		cfg.Abstract = kind
		f, err := Build(g, objects, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sizes[kind] = f.Directory().SizeBytes()
	}
	if sizes[AbstractCount] >= sizes[AbstractSet] {
		t.Fatalf("count abstract (%d B) not smaller than set (%d B)", sizes[AbstractCount], sizes[AbstractSet])
	}
}

func TestMultipleDirectoriesOnOneOverlay(t *testing.T) {
	// Hotels and restaurants as separate object sets over one network.
	g := dataset.MustGenerate(dataset.Spec{Name: "t", Nodes: 300, Edges: 350, Seed: 25})
	hotels := dataset.PlaceUniform(g, 10, 26)
	restaurants := dataset.PlaceUniform(g, 15, 27)
	f, err := Build(g, hotels, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	restDir := f.AttachObjects(restaurants, AbstractSet)
	q := Query{Node: dataset.RandomNodes(g, 1, 28)[0]}

	gotH, _ := f.KNN(q, 3)
	wantH := bruteKNN(g, hotels, q, 3)
	if !resultsMatch(gotH, wantH) {
		t.Fatal("hotel results wrong")
	}
	// Swap in the restaurant directory and objects for comparison.
	f2 := &Framework{g: f.g, h: f.h, objects: restaurants, ro: f.ro, ad: restDir, store: f.store}
	gotR, _ := f2.KNN(q, 3)
	wantR := bruteKNN(g, restaurants, q, 3)
	if !resultsMatch(gotR, wantR) {
		t.Fatal("restaurant results wrong")
	}
}

func TestQuickRandomGraphEquivalence(t *testing.T) {
	// Property test: on many random small networks with random objects and
	// random hierarchy shapes, ROAD == brute force for kNN and range.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		nodes := 60 + rng.Intn(200)
		edges := nodes + rng.Intn(nodes/2)
		g := dataset.MustGenerate(dataset.Spec{Name: "q", Nodes: nodes, Edges: edges, Seed: int64(trial)})
		objects := dataset.PlaceUniform(g, 1+rng.Intn(20), int64(trial*7), 0, 5)
		cfg := Config{Rnet: rnet.Config{
			Fanout:          2 << rng.Intn(2), // 2 or 4
			Levels:          1 + rng.Intn(3),
			KLPasses:        rng.Intn(4),
			PruneMaxBorders: rng.Intn(40),
			Seed:            int64(trial),
		}}
		f, err := Build(g, objects, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			q := Query{Node: graph.NodeID(rng.Intn(nodes))}
			k := 1 + rng.Intn(5)
			got, _ := f.KNN(q, k)
			want := bruteKNN(g, objects, q, k)
			if !resultsMatch(got, want) {
				t.Fatalf("trial %d: KNN mismatch at node %d k=%d\n got %v\nwant %v",
					trial, q.Node, k, got, want)
			}
			r := g.EstimateDiameter() * (0.02 + rng.Float64()*0.2)
			gotR, _ := f.Range(q, r)
			wantR := bruteRange(g, objects, q, r)
			if !resultsMatch(gotR, wantR) {
				t.Fatalf("trial %d: Range mismatch at node %d r=%g: got %d want %d",
					trial, q.Node, r, len(gotR), len(wantR))
			}
		}
	}
}

func TestBuildDefaultsApplied(t *testing.T) {
	g := dataset.MustGenerate(dataset.Spec{Name: "t", Nodes: 300, Edges: 350, Seed: 30})
	objects := dataset.PlaceUniform(g, 10, 31)
	f, err := Build(g, objects, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Hierarchy().Levels() != 4 {
		t.Fatalf("default levels = %d, want 4", f.Hierarchy().Levels())
	}
	if f.BuildTime <= 0 {
		t.Fatal("BuildTime not recorded")
	}
	if f.IndexSizeBytes() <= 0 {
		t.Fatal("IndexSizeBytes = 0")
	}
}

func TestObjectAwarePartitioningStaysExact(t *testing.T) {
	// The future-work object-based partitioning must not change answers,
	// only the Rnet shapes.
	g := dataset.MustGenerate(dataset.Spec{Name: "oap", Nodes: 500, Edges: 570, Seed: 70})
	objects := dataset.PlaceClustered(g, 40, 2, 71)
	cfg := defaultCfg()
	cfg.ObjectAwarePartitioning = true
	f, err := Build(g, objects, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, qn := range dataset.RandomNodes(g, 20, 72) {
		q := Query{Node: qn}
		got, _ := f.KNN(q, 5)
		want := bruteKNN(g, objects, q, 5)
		if !resultsMatch(got, want) {
			t.Fatalf("object-aware KNN mismatch at %d", qn)
		}
	}
}
