package core

import (
	"testing"

	"road/internal/dataset"
	"road/internal/graph"
	"road/internal/rnet"
	"road/internal/storage"
)

func adFixture(t *testing.T, kind AbstractKind) (*AssocDir, *rnet.Hierarchy, *graph.Graph, *graph.ObjectSet) {
	t.Helper()
	g := dataset.MustGenerate(dataset.Spec{Name: "ad", Nodes: 200, Edges: 230, Seed: 1})
	h, err := rnet.Build(g, rnet.Config{Fanout: 2, Levels: 2, KLPasses: -1})
	if err != nil {
		t.Fatal(err)
	}
	objects := graph.NewObjectSet(g)
	ad := NewAssocDir(h, objects, kind, storage.NewStore(0))
	return ad, h, g, objects
}

func TestAssocDirInsertRemove(t *testing.T) {
	ad, h, g, objects := adFixture(t, AbstractSet)
	e := graph.EdgeID(10)
	o := objects.MustAdd(e, g.Weight(e)/4, 5)
	ad.Insert(o)

	ed := g.Edge(e)
	if got := ad.ObjectsAt(ed.U, 0); len(got) != 1 || got[0].obj != o.ID {
		t.Fatalf("ObjectsAt(U) = %v", got)
	}
	if got := ad.ObjectsAt(ed.V, 0); len(got) != 1 {
		t.Fatalf("ObjectsAt(V) = %v", got)
	}
	// Distances at endpoints reflect the object's offsets.
	if got := ad.ObjectsAt(ed.U, 0)[0].dist; got != o.DU {
		t.Fatalf("dist at U = %g, want %g", got, o.DU)
	}
	// Abstract chain: leaf Rnet and its ancestors all see the object.
	leaf := h.LeafOf(e)
	for _, r := range h.AncestorChain(leaf) {
		if !ad.RnetMayContain(r, 0) {
			t.Fatalf("Rnet %d abstract empty after insert", r)
		}
		if !ad.RnetMayContain(r, 5) {
			t.Fatalf("Rnet %d abstract misses attr 5", r)
		}
		if ad.RnetMayContain(r, 6) {
			t.Fatalf("Rnet %d abstract matches wrong attr (set kind is exact)", r)
		}
	}
	// Unrelated Rnets stay empty.
	for _, r := range h.AtLevel(1) {
		if r != h.AncestorAt(leaf, 1) && ad.RnetMayContain(r, 0) {
			t.Fatalf("unrelated Rnet %d claims objects", r)
		}
	}

	ad.Remove(o)
	if got := ad.ObjectsAt(ed.U, 0); len(got) != 0 {
		t.Fatalf("ObjectsAt after remove = %v", got)
	}
	for _, r := range h.AncestorChain(leaf) {
		if ad.RnetMayContain(r, 0) {
			t.Fatalf("Rnet %d abstract nonempty after remove", r)
		}
	}
}

func TestAssocDirAttrFilter(t *testing.T) {
	ad, _, g, objects := adFixture(t, AbstractSet)
	e := graph.EdgeID(3)
	o1 := objects.MustAdd(e, 0, 1)
	o2 := objects.MustAdd(e, 0, 2)
	ad.Insert(o1)
	ad.Insert(o2)
	u := g.Edge(e).U
	if got := ad.ObjectsAt(u, 1); len(got) != 1 || got[0].obj != o1.ID {
		t.Fatalf("attr filter = %v", got)
	}
	if got := ad.ObjectsAt(u, 0); len(got) != 2 {
		t.Fatalf("wildcard = %v", got)
	}
}

func TestAssocDirUpdateAttr(t *testing.T) {
	ad, h, g, objects := adFixture(t, AbstractSet)
	e := graph.EdgeID(7)
	o := objects.MustAdd(e, 0, 1)
	ad.Insert(o)
	ad.UpdateAttr(o, 9)
	leaf := h.LeafOf(e)
	if ad.RnetMayContain(leaf, 1) {
		t.Fatal("old attr still in abstract")
	}
	if !ad.RnetMayContain(leaf, 9) {
		t.Fatal("new attr missing from abstract")
	}
	u := g.Edge(e).U
	if got := ad.ObjectsAt(u, 9); len(got) != 1 {
		t.Fatalf("node entry not updated: %v", got)
	}
}

func TestAssocDirCountKindConservative(t *testing.T) {
	ad, h, g, objects := adFixture(t, AbstractCount)
	e := graph.EdgeID(5)
	ad.Insert(objects.MustAdd(e, 0, 1))
	leaf := h.LeafOf(e)
	// Count abstracts cannot discriminate attributes: any attr matches.
	if !ad.RnetMayContain(leaf, 42) {
		t.Fatal("count abstract rejected an attribute (must be conservative)")
	}
	_ = g
}

func TestAssocDirBloomKindRebuildsOnRemove(t *testing.T) {
	ad, h, g, objects := adFixture(t, AbstractBloom)
	e := graph.EdgeID(5)
	o1 := objects.MustAdd(e, 0, 1)
	o2 := objects.MustAdd(e, 0, 2)
	ad.Insert(o1)
	ad.Insert(o2)
	leaf := h.LeafOf(e)
	if !ad.RnetMayContain(leaf, 1) || !ad.RnetMayContain(leaf, 2) {
		t.Fatal("bloom abstract missing inserted attrs")
	}
	ad.Remove(o1)
	// After the rebuild, attr 2 must still match; attr 1 should not
	// (modulo bloom false positives, impossible here with one key).
	if !ad.RnetMayContain(leaf, 2) {
		t.Fatal("bloom abstract lost surviving attr after rebuild")
	}
	_ = g
}

func TestAssocDirIOAccounting(t *testing.T) {
	g := dataset.MustGenerate(dataset.Spec{Name: "ad", Nodes: 200, Edges: 230, Seed: 2})
	h, err := rnet.Build(g, rnet.Config{Fanout: 2, Levels: 2, KLPasses: -1})
	if err != nil {
		t.Fatal(err)
	}
	objects := dataset.PlaceUniform(g, 20, 3)
	store := storage.NewStore(0)
	ad := NewAssocDir(h, objects, AbstractSet, store)
	store.ResetStats()
	o := objects.All()[0]
	u := g.Edge(o.Edge).U
	ad.ObjectsAt(u, 0)
	if store.Stats().Reads == 0 {
		t.Fatal("ObjectsAt charged no reads")
	}
	// Quiet variant must not charge.
	store.ResetStats()
	ad.objectsAt(u, 0, false)
	ad.rnetMayContain(h.LeafOf(o.Edge), 0, false)
	if store.Stats().Reads != 0 {
		t.Fatal("quiet accessors charged I/O")
	}
}

func TestAssocDirSizeBytes(t *testing.T) {
	ad, _, _, objects := adFixture(t, AbstractSet)
	empty := ad.SizeBytes()
	for i := 0; i < 10; i++ {
		o := objects.MustAdd(graph.EdgeID(i), 0, int32(i))
		ad.Insert(o)
	}
	if ad.SizeBytes() <= empty {
		t.Fatal("SizeBytes did not grow with inserts")
	}
	if ad.Kind() != AbstractSet {
		t.Fatal("Kind mismatch")
	}
}

func TestAbstractKindString(t *testing.T) {
	if AbstractSet.String() != "set" || AbstractCount.String() != "count" ||
		AbstractBloom.String() != "bloom" || AbstractKind(99).String() != "unknown" {
		t.Fatal("AbstractKind.String mismatch")
	}
}

func TestRouteOverlayVisitChargesIO(t *testing.T) {
	g := dataset.MustGenerate(dataset.Spec{Name: "ro", Nodes: 300, Edges: 350, Seed: 4})
	h, err := rnet.Build(g, rnet.Config{Fanout: 4, Levels: 3, KLPasses: -1})
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewStore(0)
	ro := NewRouteOverlay(h, store)
	store.ResetStats()
	tree := ro.Visit(42)
	if len(tree) == 0 {
		t.Fatal("Visit returned empty tree for connected node")
	}
	if store.Stats().Reads == 0 {
		t.Fatal("Visit charged no reads")
	}
	if ro.SizeBytes() <= h.SizeBytes() {
		t.Fatal("overlay size should exceed bare hierarchy size (per-node trees)")
	}
}
