package core

import (
	"math/rand"
	"testing"

	"road/internal/dataset"
	"road/internal/graph"
	"road/internal/rnet"
)

// verifyAbstractLemma1 checks Lemma 1 on live state: each Rnet's abstract
// count equals the number of objects on edges it encloses, and a parent's
// count equals the sum of its children's.
func verifyAbstractLemma1(t *testing.T, f *Framework) {
	t.Helper()
	h := f.Hierarchy()
	want := make(map[rnet.RnetID]int)
	for _, o := range f.Objects().All() {
		leaf := h.LeafOf(o.Edge)
		if leaf == rnet.NoRnet {
			continue
		}
		for _, r := range h.AncestorChain(leaf) {
			want[r]++
		}
	}
	for i := 0; i < h.NumRnets(); i++ {
		id := rnet.RnetID(i)
		if got := f.Directory().AbstractTotal(id); got != want[id] {
			t.Fatalf("Rnet %d abstract total = %d, want %d", id, got, want[id])
		}
	}
	// Parent = sum of children.
	for i := 0; i < h.NumRnets(); i++ {
		r := h.Rnet(rnet.RnetID(i))
		if len(r.Children) == 0 {
			continue
		}
		sum := 0
		for _, c := range r.Children {
			sum += f.Directory().AbstractTotal(c)
		}
		if got := f.Directory().AbstractTotal(r.ID); got != sum {
			t.Fatalf("Rnet %d total %d != children sum %d", r.ID, got, sum)
		}
	}
}

func TestObjectInsertDelete(t *testing.T) {
	f, g, objects := fixture(t, 300, 350, 10, 40, defaultCfg())
	rng := rand.New(rand.NewSource(1))
	// Delete every object then re-insert at random spots, verifying
	// queries and Lemma 1 along the way.
	for _, o := range objects.All() {
		if err := f.DeleteObject(o.ID); err != nil {
			t.Fatal(err)
		}
	}
	verifyAbstractLemma1(t, f)
	if got, _ := f.KNN(Query{Node: 0}, 5); len(got) != 0 {
		t.Fatalf("KNN on empty set returned %d results", len(got))
	}
	for i := 0; i < 15; i++ {
		e := graph.EdgeID(rng.Intn(g.NumEdges()))
		if _, err := f.InsertObject(e, g.Weight(e)/2, 0); err != nil {
			t.Fatal(err)
		}
	}
	verifyAbstractLemma1(t, f)
	for _, qn := range dataset.RandomNodes(g, 15, 2) {
		q := Query{Node: qn}
		got, _ := f.KNN(q, 3)
		want := bruteKNN(g, objects, q, 3)
		if !resultsMatch(got, want) {
			t.Fatalf("KNN after churn mismatch at %d", qn)
		}
	}
}

func TestDeleteMissingObject(t *testing.T) {
	f, _, _ := fixture(t, 200, 230, 5, 41, defaultCfg())
	if err := f.DeleteObject(9999); err == nil {
		t.Fatal("deleting missing object succeeded")
	}
}

func TestUpdateObjectAttr(t *testing.T) {
	f, g, objects := fixture(t, 300, 350, 12, 42, defaultCfg())
	target := objects.All()[0]
	if err := f.UpdateObjectAttr(target.ID, 55); err != nil {
		t.Fatal(err)
	}
	verifyAbstractLemma1(t, f)
	q := Query{Node: dataset.RandomNodes(g, 1, 43)[0], Attr: 55}
	got, _ := f.KNN(q, 5)
	found := false
	for _, r := range got {
		if r.Object.ID == target.ID {
			found = true
		}
		if r.Object.Attr != 55 {
			t.Fatal("predicate violated after attr update")
		}
	}
	if !found {
		t.Fatal("updated object not returned by attribute query")
	}
	if err := f.UpdateObjectAttr(9999, 1); err == nil {
		t.Fatal("updating missing object succeeded")
	}
}

func TestEdgeWeightChangeKeepsQueriesExact(t *testing.T) {
	f, g, objects := fixture(t, 300, 350, 15, 44, defaultCfg())
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 12; i++ {
		e := graph.EdgeID(rng.Intn(g.NumEdges()))
		factor := 0.3 + rng.Float64()*3
		if _, err := f.SetEdgeWeight(e, g.Weight(e)*factor); err != nil {
			t.Fatal(err)
		}
	}
	verifyAbstractLemma1(t, f)
	for _, qn := range dataset.RandomNodes(g, 20, 4) {
		q := Query{Node: qn}
		got, _ := f.KNN(q, 4)
		want := bruteKNN(g, objects, q, 4)
		if !resultsMatch(got, want) {
			t.Fatalf("KNN after reweights mismatch at %d:\n got %v\nwant %v", qn, got, want)
		}
	}
}

func TestEdgeWeightChangeRescalesObjects(t *testing.T) {
	f, g, objects := fixture(t, 200, 230, 0, 45, defaultCfg())
	// Place one object at the middle of an edge, then double the edge.
	e := graph.EdgeID(5)
	w := g.Weight(e)
	o, err := f.InsertObject(e, w/2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SetEdgeWeight(e, w*2); err != nil {
		t.Fatal(err)
	}
	got, _ := objects.Get(o.ID)
	if got.DU != w || got.DV != w {
		t.Fatalf("object offsets after doubling = (%g,%g), want (%g,%g)", got.DU, got.DV, w, w)
	}
}

func TestEdgeDeleteRemovesItsObjects(t *testing.T) {
	f, g, objects := fixture(t, 300, 350, 0, 46, defaultCfg())
	// Choose an edge whose endpoints keep other connections.
	var e graph.EdgeID = graph.NoEdge
	for i := 0; i < g.NumEdges(); i++ {
		ed := g.Edge(graph.EdgeID(i))
		if g.Degree(ed.U) > 1 && g.Degree(ed.V) > 1 {
			e = graph.EdgeID(i)
			break
		}
	}
	if e == graph.NoEdge {
		t.Skip("no safe edge")
	}
	o, err := f.InsertObject(e, g.Weight(e)/3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.DeleteEdge(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := objects.Get(o.ID); ok {
		t.Fatal("object survived deletion of its edge")
	}
	verifyAbstractLemma1(t, f)
	// Queries still exact after the structural change.
	for _, qn := range dataset.RandomNodes(g, 10, 5) {
		q := Query{Node: qn}
		got, _ := f.KNN(q, 2)
		want := bruteKNN(g, objects, q, 2)
		if !resultsMatch(got, want) {
			t.Fatalf("KNN after edge delete mismatch at %d", qn)
		}
	}
}

func TestEdgeAddKeepsQueriesExact(t *testing.T) {
	f, g, objects := fixture(t, 300, 350, 12, 47, defaultCfg())
	rng := rand.New(rand.NewSource(6))
	added := 0
	for added < 5 {
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if u == v || g.EdgeBetween(u, v) != graph.NoEdge {
			continue
		}
		w := g.Coord(u).Dist(g.Coord(v)) + 0.01
		if _, _, err := f.AddEdge(u, v, w); err != nil {
			t.Fatal(err)
		}
		added++
	}
	for _, qn := range dataset.RandomNodes(g, 15, 7) {
		q := Query{Node: qn}
		got, _ := f.KNN(q, 3)
		want := bruteKNN(g, objects, q, 3)
		if !resultsMatch(got, want) {
			t.Fatalf("KNN after edge adds mismatch at %d:\n got %v\nwant %v", qn, got, want)
		}
	}
}

func TestDeleteRestoreCycleKeepsQueriesExact(t *testing.T) {
	// The evaluation's network-update workload: remove an edge, add it
	// back, repeatedly; queries must stay exact throughout.
	f, g, objects := fixture(t, 300, 350, 15, 48, defaultCfg())
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 8; i++ {
		e := graph.EdgeID(rng.Intn(g.NumEdges()))
		ed := g.Edge(e)
		if ed.Removed || g.Degree(ed.U) <= 1 || g.Degree(ed.V) <= 1 {
			continue
		}
		// Objects on the edge are destroyed by deletion; skip object edges
		// to keep the comparison set stable.
		if len(f.Objects().OnEdge(e)) > 0 {
			continue
		}
		if _, err := f.DeleteEdge(e); err != nil {
			t.Fatal(err)
		}
		if _, err := f.RestoreEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, qn := range dataset.RandomNodes(g, 15, 9) {
		q := Query{Node: qn}
		got, _ := f.KNN(q, 3)
		want := bruteKNN(g, objects, q, 3)
		if !resultsMatch(got, want) {
			t.Fatalf("KNN after delete/restore mismatch at %d", qn)
		}
	}
}

func TestMixedChurnSoak(t *testing.T) {
	// Interleave object and network updates with query verification — the
	// end-to-end failure-injection soak.
	f, g, objects := fixture(t, 350, 400, 20, 49, defaultCfg())
	rng := rand.New(rand.NewSource(10))
	for round := 0; round < 5; round++ {
		for i := 0; i < 10; i++ {
			switch rng.Intn(4) {
			case 0:
				e := graph.EdgeID(rng.Intn(g.NumEdges()))
				if !g.Edge(e).Removed {
					f.SetEdgeWeight(e, g.Weight(e)*(0.5+rng.Float64()))
				}
			case 1:
				all := objects.All()
				if len(all) > 3 {
					f.DeleteObject(all[rng.Intn(len(all))].ID)
				}
			case 2:
				e := graph.EdgeID(rng.Intn(g.NumEdges()))
				if !g.Edge(e).Removed {
					f.InsertObject(e, rng.Float64()*g.Weight(e), int32(rng.Intn(3)))
				}
			case 3:
				all := objects.All()
				if len(all) > 0 {
					f.UpdateObjectAttr(all[rng.Intn(len(all))].ID, int32(rng.Intn(3)))
				}
			}
		}
		verifyAbstractLemma1(t, f)
		for _, qn := range dataset.RandomNodes(g, 5, int64(round)) {
			q := Query{Node: qn, Attr: int32(rng.Intn(3))}
			got, _ := f.KNN(q, 3)
			want := bruteKNN(g, objects, q, 3)
			if !resultsMatch(got, want) {
				t.Fatalf("round %d: KNN mismatch at %d attr %d", round, qn, q.Attr)
			}
		}
	}
}
