package core

import (
	"testing"

	"road/internal/graph"
)

// These tests pin the CSR hot path's allocation behavior: with a warmed
// session workspace and a caller-reused result buffer, the kNN and range
// inner loops perform zero allocations per query. A regression here —
// a closure creeping into the loop, boxing on the heap, a map rebuilt per
// query — fails CI.

func allocFixture(t *testing.T) (*Session, graph.NodeID) {
	t.Helper()
	cfg := defaultCfg()
	cfg.BufferPages = -1 // serving configuration: no simulated store at all
	f, _, _ := fixture(t, 2000, 2600, 300, 23, cfg)
	return f.NewSession(), 17
}

func TestKNNZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the pin only holds on plain builds")
	}
	s, node := allocFixture(t)
	buf := make([]Result, 0, 64)
	q := Query{Node: node}
	// One warm-up query grows the workspace scratch to the network size.
	buf, _ = s.KNNAppend(buf[:0], q, 10)
	if len(buf) == 0 {
		t.Fatal("warm-up query returned nothing; fixture is broken")
	}
	avg := testing.AllocsPerRun(200, func() {
		buf, _ = s.KNNAppend(buf[:0], q, 10)
	})
	if avg != 0 {
		t.Fatalf("kNN inner loop allocates %v per query; want 0", avg)
	}
}

func TestRangeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the pin only holds on plain builds")
	}
	s, node := allocFixture(t)
	buf := make([]Result, 0, 256)
	q := Query{Node: node}
	buf, _ = s.RangeAppend(buf[:0], q, 200)
	avg := testing.AllocsPerRun(200, func() {
		buf, _ = s.RangeAppend(buf[:0], q, 200)
	})
	if avg != 0 {
		t.Fatalf("range inner loop allocates %v per query; want 0", avg)
	}
}

func TestKNNZeroAllocsWithAttrFilter(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the pin only holds on plain builds")
	}
	s, node := allocFixture(t)
	buf := make([]Result, 0, 64)
	q := Query{Node: node, Attr: 2}
	buf, _ = s.KNNAppend(buf[:0], q, 5)
	avg := testing.AllocsPerRun(200, func() {
		buf, _ = s.KNNAppend(buf[:0], q, 5)
	})
	if avg != 0 {
		t.Fatalf("attribute-filtered kNN allocates %v per query; want 0", avg)
	}
}
