package core

import (
	"fmt"
	"sync"
	"testing"

	"road/internal/dataset"
)

func TestSessionMatchesFramework(t *testing.T) {
	f, g, _ := fixture(t, 400, 460, 25, 60, defaultCfg())
	s := f.NewSession()
	for _, qn := range dataset.RandomNodes(g, 20, 61) {
		q := Query{Node: qn}
		want, _ := f.KNN(q, 5)
		got, st := s.KNN(q, 5)
		if !resultsMatch(got, want) {
			t.Fatalf("session KNN mismatch at %d", qn)
		}
		if st.IO.Reads != 0 {
			t.Fatal("session charged I/O")
		}
		if st.NodesPopped == 0 {
			t.Fatal("session stats empty")
		}
		diam := g.EstimateDiameter()
		wantR, _ := f.Range(q, diam*0.1)
		gotR, _ := s.Range(q, diam*0.1)
		if !resultsMatch(gotR, wantR) {
			t.Fatalf("session Range mismatch at %d", qn)
		}
	}
}

func TestSessionsConcurrent(t *testing.T) {
	f, g, objects := fixture(t, 600, 700, 30, 62, defaultCfg())
	queries := dataset.RandomNodes(g, 40, 63)
	// Ground truth computed serially up front.
	want := make([][]Result, len(queries))
	for i, qn := range queries {
		want[i] = bruteKNN(g, objects, Query{Node: qn}, 5)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := f.NewSession()
			for round := 0; round < 5; round++ {
				for i, qn := range queries {
					got, _ := s.KNN(Query{Node: qn}, 5)
					if !resultsMatch(got, want[i]) {
						errs <- errf("worker %d: mismatch at query %d", w, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
