//go:build !race

package core

// raceEnabled reports whether the race detector instruments this build.
// The allocation-regression tests skip under -race: instrumentation adds
// its own allocations, which would fail the 0-allocs pin spuriously.
const raceEnabled = false
