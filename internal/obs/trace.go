package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// A LegName identifies one timed phase of a query. The Leg* constants
// below are the complete vocabulary: dashboards, the query-log analyzer
// and cross-process joins all key on these strings, so a new phase means
// a new constant here — roadvet's obsnames analyzer rejects ad-hoc
// literals elsewhere.
type LegName string

// The trace-leg vocabulary.
const (
	// LegSearch is the single-index (unsharded) search.
	LegSearch LegName = "search"
	// LegHomeFast is the sharded fast path: home-shard search under the
	// shared read lock.
	LegHomeFast LegName = "home_fast"
	// LegHomeLocked is the escalated home re-run holding the write gate.
	LegHomeLocked LegName = "home_locked"
	// LegHomeWatched is the home re-run watched for epoch invalidation.
	LegHomeWatched LegName = "home_watched"
	// LegGateway is the cross-shard Dijkstra over border tables.
	LegGateway LegName = "gateway"
	// LegEnter is one foreign shard's entry search.
	LegEnter LegName = "enter"
	// LegPathLeg is one shard-local segment of path assembly.
	LegPathLeg LegName = "path_leg"
	// LegRPC is one client-side RPC hop to a shard host.
	LegRPC LegName = "rpc"
	// LegHostQueue is host-side time between accept and search start.
	LegHostQueue LegName = "host_queue"
	// LegHostSearch is a host-side shard search.
	LegHostSearch LegName = "host_search"
	// LegHostLeg is a host-side path-leg computation.
	LegHostLeg LegName = "host_leg"
	// LegHostJournal is a host-side journal append.
	LegHostJournal LegName = "host_journal"
	// LegHostApply is a host-side op apply.
	LegHostApply LegName = "host_apply"
)

// A Leg is one timed phase of a query: the single-index search, the
// sharded fast path, an escalated home re-run, the gateway Dijkstra
// over border tables, or one per-shard entry/path leg. Legs are
// recorded in completion order.
type Leg struct {
	// Name identifies the phase, from the LegName vocabulary above.
	Name LegName `json:"name"`
	// Shard is the shard the leg ran on, or -1 for phases that are not
	// shard-local (the single-index search, the gateway run).
	Shard int `json:"shard"`
	// DurationUS is the leg's wall time in microseconds.
	DurationUS int64 `json:"duration_us"`
	// Pops is the number of heap pops (settled nodes) the leg cost.
	Pops int `json:"pops"`
	// Host names the shard host an RPC leg talked to; empty for
	// in-process legs.
	Host string `json:"host,omitempty"`
	// WireUS is the part of an RPC leg's duration NOT spent computing on
	// the host — serialization, network and queueing — so cross-process
	// latency is attributable separately from shard compute time.
	WireUS int64 `json:"wire_us,omitempty"`
	// Reads is the number of simulated page reads the leg cost, when the
	// recording layer tracks them (host-side search legs do).
	Reads int64 `json:"reads,omitempty"`
	// Sub holds legs recorded inside this one on another process: a
	// shard host returns its own timing legs with each traced RPC and
	// the client nests them here, under the rpc hop that carried them.
	Sub []Leg `json:"sub,omitempty"`
}

// A Trace accumulates per-leg timings for one query. It is carried
// through the search layers via context (WithTrace / FromContext); a
// nil *Trace is valid and records nothing, so call sites need no nil
// checks.
type Trace struct {
	mu   sync.Mutex
	id   string
	legs []Leg
}

type traceKey struct{}

// WithTrace returns a context carrying a fresh Trace, and the trace.
func WithTrace(ctx context.Context) (context.Context, *Trace) {
	t := &Trace{}
	return context.WithValue(ctx, traceKey{}, t), t
}

// FromContext returns the Trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// noopDone is returned from StartLeg on a nil trace so the disabled
// path allocates nothing.
var noopDone = func(int) {}

// StartLeg starts timing a leg and returns a function that finishes
// it with the leg's pop count. On a nil trace it is a no-op.
func (t *Trace) StartLeg(name LegName, shard int) func(pops int) {
	if t == nil {
		return noopDone
	}
	start := time.Now()
	return func(pops int) {
		leg := Leg{
			Name:       name,
			Shard:      shard,
			DurationUS: time.Since(start).Microseconds(),
			Pops:       pops,
		}
		t.mu.Lock()
		t.legs = append(t.legs, leg)
		t.mu.Unlock()
	}
}

// Add records a fully-formed leg — the remote shard client uses it to
// attach RPC-hop legs (host, wire time) it timed itself. Safe on nil.
func (t *Trace) Add(leg Leg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.legs = append(t.legs, leg)
	t.mu.Unlock()
}

// SetID attaches a request ID to the trace so cross-process legs and
// log lines can be joined back to it. Safe on nil.
func (t *Trace) SetID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.id = id
	t.mu.Unlock()
}

// ID returns the trace's request ID, or "" if none was set. Safe on nil.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// Legs returns a copy of the legs recorded so far. Safe on nil.
func (t *Trace) Legs() []Leg {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Leg, len(t.legs))
	copy(out, t.legs)
	return out
}

// Request IDs are a random per-process prefix plus a counter: unique
// across a fleet without coordination, cheap enough to stamp on every
// query (no syscall or allocation beyond the formatted string).
var (
	ridPrefix = func() string {
		var b [4]byte
		rand.Read(b[:])
		return hex.EncodeToString(b[:])
	}()
	ridSeq atomic.Uint64
)

// NewRequestID returns a fleet-unique request ID like "3fa9c1d2-000042".
func NewRequestID() string {
	return fmt.Sprintf("%s-%06x", ridPrefix, ridSeq.Add(1))
}
