package analytics

import (
	"sync"

	"road/internal/obs"
)

// A Window keeps the most recent n query records in a ring so a live
// server can answer /admin/workload without re-reading its own log
// file. Safe for concurrent use; a nil *Window discards everything.
type Window struct {
	mu   sync.Mutex
	buf  []obs.QueryRecord
	next int
	full bool
}

// NewWindow returns a rolling window over the last n records (n <= 0
// returns nil, which is a valid no-op window).
func NewWindow(n int) *Window {
	if n <= 0 {
		return nil
	}
	return &Window{buf: make([]obs.QueryRecord, n)}
}

// Add appends one record, evicting the oldest when full. Safe on nil.
func (w *Window) Add(rec obs.QueryRecord) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.buf[w.next] = rec
	w.next++
	if w.next == len(w.buf) {
		w.next, w.full = 0, true
	}
	w.mu.Unlock()
}

// Len reports how many records the window currently holds. Safe on nil.
func (w *Window) Len() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.full {
		return len(w.buf)
	}
	return w.next
}

// Model builds a workload model over the window's current contents,
// oldest record first. Safe on nil (returns an empty model).
func (w *Window) Model(cfg Config) *Model {
	b := NewBuilder(cfg)
	if w == nil {
		return b.Build()
	}
	w.mu.Lock()
	recs := make([]obs.QueryRecord, 0, len(w.buf))
	if w.full {
		recs = append(recs, w.buf[w.next:]...)
	}
	recs = append(recs, w.buf[:w.next]...)
	w.mu.Unlock()
	for _, rec := range recs {
		b.Add(rec)
	}
	return b.Build()
}
