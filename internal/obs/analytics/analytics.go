// Package analytics turns the sampled JSONL query log (obs.QueryRecord
// lines) into a compact workload model: the query mix, per-shard heat,
// top hot source nodes, latency and inter-arrival distributions, and
// cache behaviour — plus concrete follow-up actions (shards loaded past
// a configurable multiple of the mean are replication/repartition
// candidates; heavily repeated identical queries are semantic-cache
// candidates). The same model backs the offline roadlog binary and
// roadd's live /admin/workload endpoint.
package analytics

import (
	"fmt"
	"sort"
	"time"

	"road/internal/obs"
)

// SpaceSaving is the Metwally/Agrawal/El Abbadi stream-summary sketch:
// at most k counters track the heavy hitters of an unbounded key
// stream. When a new key arrives with all counters taken, it replaces
// the minimum counter and inherits its count as overestimation error —
// any key with true frequency above n/k is guaranteed to be present,
// and Count-Err is a lower bound on its true frequency.
type SpaceSaving[K comparable] struct {
	k       int
	entries map[K]*ssCell
}

type ssCell struct {
	count uint64
	err   uint64
}

// TopEntry is one retained heavy hitter. Count overestimates the true
// frequency by at most Err.
type TopEntry[K comparable] struct {
	Key   K      `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err,omitempty"`
}

// NewSpaceSaving returns a sketch holding at most k counters (k <= 0
// is treated as 1).
func NewSpaceSaving[K comparable](k int) *SpaceSaving[K] {
	if k <= 0 {
		k = 1
	}
	return &SpaceSaving[K]{k: k, entries: make(map[K]*ssCell, k+1)}
}

// Add counts one occurrence of key.
func (s *SpaceSaving[K]) Add(key K) {
	if c, ok := s.entries[key]; ok {
		c.count++
		return
	}
	if len(s.entries) < s.k {
		s.entries[key] = &ssCell{count: 1}
		return
	}
	// Evict the minimum counter; the newcomer inherits its count as
	// error bound.
	var minKey K
	var minCell *ssCell
	for k, c := range s.entries {
		if minCell == nil || c.count < minCell.count {
			minKey, minCell = k, c
		}
	}
	delete(s.entries, minKey)
	s.entries[key] = &ssCell{count: minCell.count + 1, err: minCell.count}
}

// Top returns up to n entries by descending count (ties by ascending
// error, so exactly-counted keys rank first).
func (s *SpaceSaving[K]) Top(n int) []TopEntry[K] {
	out := make([]TopEntry[K], 0, len(s.entries))
	for k, c := range s.entries {
		out = append(out, TopEntry[K]{Key: k, Count: c.count, Err: c.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Err < out[j].Err
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Config tunes model construction.
type Config struct {
	// TopK bounds the hot-node and repeat-query lists (default 20).
	TopK int
	// HotFactor is the per-shard load multiple of the mean beyond which
	// a shard is flagged as a replication/repartition candidate
	// (default 2.0).
	HotFactor float64
	// RepeatMin is the minimum identical-query count for a semantic
	// cache candidate (default 10).
	RepeatMin uint64
}

func (c Config) withDefaults() Config {
	if c.TopK <= 0 {
		c.TopK = 20
	}
	if c.HotFactor <= 0 {
		c.HotFactor = 2.0
	}
	if c.RepeatMin == 0 {
		c.RepeatMin = 10
	}
	return c
}

// DistSummary describes one latency-like distribution in microseconds.
type DistSummary struct {
	Count  int64 `json:"count"`
	MeanUS int64 `json:"mean_us"`
	P50US  int64 `json:"p50_us"`
	P95US  int64 `json:"p95_us"`
	P99US  int64 `json:"p99_us"`
	MaxUS  int64 `json:"max_us"`
}

// CacheSummary aggregates the log's cache outcomes. HitRate is over
// hits+misses only (bypasses never consulted the cache).
type CacheSummary struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	Bypass  int64   `json:"bypass"`
	HitRate float64 `json:"hit_rate"`
}

// ShardHeat is one shard's share of the workload. Heat is the shard's
// query load as a multiple of the mean per-shard load; >= the
// configured HotFactor flags it for replication/repartitioning.
type ShardHeat struct {
	Shard         int     `json:"shard"`
	Queries       int64   `json:"queries"`
	Share         float64 `json:"share"`
	Heat          float64 `json:"heat"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	MeanLatencyUS int64   `json:"mean_latency_us"`
}

// Action is one concrete follow-up the model's numbers justify.
type Action struct {
	// Kind is "replicate-or-repartition" or "semantic-cache".
	Kind   string `json:"kind"`
	Target string `json:"target"`
	Detail string `json:"detail"`
}

// Model is the machine-readable workload summary (workload.json).
type Model struct {
	GeneratedAt string `json:"generated_at"`
	// Queries counts parsed records; the log is sampled, so multiply by
	// the server's -query-log-sample to estimate true traffic.
	Queries     int64            `json:"queries"`
	Malformed   int64            `json:"malformed,omitempty"`
	WindowStart string           `json:"window_start,omitempty"`
	WindowEnd   string           `json:"window_end,omitempty"`
	SpanSeconds float64          `json:"span_seconds"`
	QPS         float64          `json:"qps"`
	Mix         map[string]int64 `json:"mix"`
	Errors      map[string]int64 `json:"errors,omitempty"`
	Truncated   int64            `json:"truncated,omitempty"`

	Cache          CacheSummary           `json:"cache"`
	Latency        map[string]DistSummary `json:"latency_us"`
	InterarrivalUS DistSummary            `json:"interarrival_us"`

	Shards   []ShardHeat       `json:"shards,omitempty"`
	HotNodes []TopEntry[int64] `json:"hot_nodes,omitempty"`
	// RepeatQueries are identical (op, node, k/radius, attr) clusters.
	RepeatQueries []TopEntry[string] `json:"repeat_queries,omitempty"`
	Actions       []Action           `json:"actions,omitempty"`
}

type shardAgg struct {
	queries   int64
	hits      int64
	lookups   int64 // hits + misses
	durSumUS  int64
	durCount  int64
	durScaled bool
}

// Builder folds QueryRecords into a Model one at a time. Not safe for
// concurrent use; wrap it (or use Window) for live aggregation.
type Builder struct {
	cfg Config

	queries   int64
	malformed int64
	truncated int64
	mix       map[string]int64
	errors    map[string]int64

	hits, misses, bypass int64

	durations    map[string][]float64 // per-op, µs
	interarrival []float64            // µs between consecutive records
	lastTS       time.Time
	firstTS      time.Time
	haveTS       bool

	shards  map[int]*shardAgg
	hot     *SpaceSaving[int64]
	repeats *SpaceSaving[string]
}

// NewBuilder returns a Builder with cfg's defaults applied.
func NewBuilder(cfg Config) *Builder {
	cfg = cfg.withDefaults()
	return &Builder{
		cfg:       cfg,
		mix:       make(map[string]int64),
		errors:    make(map[string]int64),
		durations: make(map[string][]float64),
		shards:    make(map[int]*shardAgg),
		// 4× headroom keeps the top-K ranking exact under realistic
		// skew: only keys pushed out of the extended sketch can disturb
		// the first K positions.
		hot:     NewSpaceSaving[int64](cfg.TopK * 4),
		repeats: NewSpaceSaving[string](cfg.TopK * 4),
	}
}

// Add folds one parsed record into the model.
func (b *Builder) Add(rec obs.QueryRecord) {
	b.queries++
	b.mix[rec.Op]++
	if rec.Code != "" {
		b.errors[rec.Code]++
	}
	if rec.Truncated {
		b.truncated++
	}
	switch rec.Cache {
	case "hit":
		b.hits++
	case "miss":
		b.misses++
	default:
		b.bypass++
	}
	b.durations[rec.Op] = append(b.durations[rec.Op], float64(rec.DurationUS))

	if ts, err := time.Parse(time.RFC3339Nano, rec.TS); err == nil {
		if !b.haveTS {
			b.firstTS, b.haveTS = ts, true
		} else if d := ts.Sub(b.lastTS); d >= 0 {
			b.interarrival = append(b.interarrival, float64(d.Microseconds()))
		}
		b.lastTS = ts
	}

	if rec.Home >= 0 {
		sa := b.shards[rec.Home]
		if sa == nil {
			sa = &shardAgg{}
			b.shards[rec.Home] = sa
		}
		sa.queries++
		switch rec.Cache {
		case "hit":
			sa.hits++
			sa.lookups++
		case "miss":
			sa.lookups++
		}
		sa.durSumUS += rec.DurationUS
		sa.durCount++
	}

	b.hot.Add(rec.Node)
	b.repeats.Add(signature(rec))
}

// AddMalformed counts n unparseable log lines (reported, not modeled).
func (b *Builder) AddMalformed(n int64) { b.malformed += n }

// signature identifies a repeatable query: same op, node and bounds —
// exactly the identity the result cache (or a semantic cache) can
// answer without a search.
func signature(rec obs.QueryRecord) string {
	switch rec.Op {
	case "within":
		return fmt.Sprintf("within n=%d r=%g a=%d", rec.Node, rec.Radius, rec.Attr)
	case "path":
		return fmt.Sprintf("path n=%d", rec.Node)
	default:
		return fmt.Sprintf("%s n=%d k=%d a=%d", rec.Op, rec.Node, rec.K, rec.Attr)
	}
}

func summarize(vals []float64) DistSummary {
	if len(vals) == 0 {
		return DistSummary{}
	}
	sort.Float64s(vals)
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return DistSummary{
		Count:  int64(len(vals)),
		MeanUS: int64(sum / float64(len(vals))),
		P50US:  int64(obs.Percentile(vals, 0.50)),
		P95US:  int64(obs.Percentile(vals, 0.95)),
		P99US:  int64(obs.Percentile(vals, 0.99)),
		MaxUS:  int64(vals[len(vals)-1]),
	}
}

// Build assembles the Model from everything added so far. The Builder
// may keep accumulating afterwards; Build is a snapshot.
func (b *Builder) Build() *Model {
	m := &Model{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Queries:     b.queries,
		Malformed:   b.malformed,
		Truncated:   b.truncated,
		Mix:         make(map[string]int64, len(b.mix)),
		Latency:     make(map[string]DistSummary, len(b.durations)),
	}
	for op, n := range b.mix {
		m.Mix[op] = n
	}
	if len(b.errors) > 0 {
		m.Errors = make(map[string]int64, len(b.errors))
		for code, n := range b.errors {
			m.Errors[code] = n
		}
	}

	m.Cache = CacheSummary{Hits: b.hits, Misses: b.misses, Bypass: b.bypass}
	if lookups := b.hits + b.misses; lookups > 0 {
		m.Cache.HitRate = float64(b.hits) / float64(lookups)
	}

	for op, durs := range b.durations {
		m.Latency[op] = summarize(append([]float64(nil), durs...))
	}
	m.InterarrivalUS = summarize(append([]float64(nil), b.interarrival...))

	if b.haveTS {
		m.WindowStart = b.firstTS.UTC().Format(time.RFC3339Nano)
		m.WindowEnd = b.lastTS.UTC().Format(time.RFC3339Nano)
		m.SpanSeconds = b.lastTS.Sub(b.firstTS).Seconds()
		if m.SpanSeconds > 0 {
			m.QPS = float64(b.queries) / m.SpanSeconds
		}
	}

	if len(b.shards) > 0 {
		mean := float64(0)
		for _, sa := range b.shards {
			mean += float64(sa.queries)
		}
		mean /= float64(len(b.shards))
		for id, sa := range b.shards {
			sh := ShardHeat{Shard: id, Queries: sa.queries}
			if b.queries > 0 {
				sh.Share = float64(sa.queries) / float64(b.queries)
			}
			if mean > 0 {
				sh.Heat = float64(sa.queries) / mean
			}
			if sa.lookups > 0 {
				sh.CacheHitRate = float64(sa.hits) / float64(sa.lookups)
			}
			if sa.durCount > 0 {
				sh.MeanLatencyUS = sa.durSumUS / sa.durCount
			}
			m.Shards = append(m.Shards, sh)
		}
		sort.Slice(m.Shards, func(i, j int) bool {
			if m.Shards[i].Queries != m.Shards[j].Queries {
				return m.Shards[i].Queries > m.Shards[j].Queries
			}
			return m.Shards[i].Shard < m.Shards[j].Shard
		})
	}

	m.HotNodes = b.hot.Top(b.cfg.TopK)
	for _, e := range b.repeats.Top(b.cfg.TopK) {
		if e.Count-e.Err >= b.cfg.RepeatMin {
			m.RepeatQueries = append(m.RepeatQueries, e)
		}
	}

	for _, sh := range m.Shards {
		if len(m.Shards) >= 2 && sh.Heat >= b.cfg.HotFactor {
			m.Actions = append(m.Actions, Action{
				Kind:   "replicate-or-repartition",
				Target: fmt.Sprintf("shard %d", sh.Shard),
				Detail: fmt.Sprintf("%.1f× mean load (%.0f%% of queries); replicate it or split its region",
					sh.Heat, sh.Share*100),
			})
		}
	}
	for _, e := range m.RepeatQueries {
		m.Actions = append(m.Actions, Action{
			Kind:   "semantic-cache",
			Target: e.Key,
			Detail: fmt.Sprintf("repeated ≥%d times; a semantic cache (or longer TTL) would absorb it", e.Count-e.Err),
		})
	}
	return m
}
