package analytics

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"

	"road/internal/obs"
)

// FuzzScanReader feeds arbitrary bytes through the query-log scanner:
// whatever ends up in a JSONL segment — torn writes, truncation,
// garbage — the scan must not panic, must never surface a record
// without an op, and must account for every non-empty line as either
// parsed or malformed. The only error it may return is the scanner's
// own line-too-long guard.
func FuzzScanReader(f *testing.F) {
	f.Add([]byte(`{"ts":"2026-08-07T12:00:00.000000001Z","id":"3fa9c1d2-000042","op":"knn","node":7,"home":0,"k":5,"pops":120,"results":5,"duration_us":830}`))
	f.Add([]byte("{\"op\":\"within\",\"node\":1,\"home\":-1,\"radius\":2.5,\"pops\":9,\"results\":0,\"duration_us\":77}\n{\"op\":\"path\",\"node\":3,\"home\":1,\"pops\":44,\"results\":1,\"duration_us\":910}\n"))
	f.Add([]byte("\n\n{\"op\":\"batch\",\"node\":0,\"home\":0,\"pops\":1,\"results\":1,\"duration_us\":1}\n{\"op\":\"knn\",\"node\":2,\"ho"))
	f.Add([]byte(`{"ts":"x","node":1}`))
	f.Add([]byte("not json at all\r\n\r\n{}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var parsed int64
		malformed, err := ScanReader(bytes.NewReader(data), func(rec obs.QueryRecord) {
			parsed++
			if rec.Op == "" {
				t.Error("callback received a record with empty op")
			}
		})
		if err != nil {
			if !errors.Is(err, bufio.ErrTooLong) {
				t.Fatalf("ScanReader returned %v; only bufio.ErrTooLong is a legal read error here", err)
			}
			return
		}
		var nonEmpty int64
		for _, line := range strings.Split(string(data), "\n") {
			if len(strings.TrimSuffix(line, "\r")) > 0 {
				nonEmpty++
			}
		}
		if parsed+malformed != nonEmpty {
			t.Fatalf("%d parsed + %d malformed != %d non-empty lines: scan dropped lines silently", parsed, malformed, nonEmpty)
		}
	})
}
