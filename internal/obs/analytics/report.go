package analytics

import (
	"fmt"
	"io"
	"sort"
)

// Report renders m as a human-readable workload report.
func Report(w io.Writer, m *Model) {
	fmt.Fprintf(w, "workload report — %d queries", m.Queries)
	if m.Malformed > 0 {
		fmt.Fprintf(w, " (%d malformed lines skipped)", m.Malformed)
	}
	fmt.Fprintln(w)
	if m.SpanSeconds > 0 {
		fmt.Fprintf(w, "window: %s .. %s (%.1fs, %.1f logged qps)\n",
			m.WindowStart, m.WindowEnd, m.SpanSeconds, m.QPS)
	}

	if len(m.Mix) > 0 {
		fmt.Fprintln(w, "\nquery mix:")
		ops := make([]string, 0, len(m.Mix))
		for op := range m.Mix {
			ops = append(ops, op)
		}
		sort.Slice(ops, func(i, j int) bool { return m.Mix[ops[i]] > m.Mix[ops[j]] })
		for _, op := range ops {
			n := m.Mix[op]
			fmt.Fprintf(w, "  %-8s %8d  (%5.1f%%)", op, n, pct(n, m.Queries))
			if d, ok := m.Latency[op]; ok && d.Count > 0 {
				fmt.Fprintf(w, "  p50=%dµs p95=%dµs p99=%dµs max=%dµs", d.P50US, d.P95US, d.P99US, d.MaxUS)
			}
			fmt.Fprintln(w)
		}
	}

	lookups := m.Cache.Hits + m.Cache.Misses
	fmt.Fprintf(w, "\ncache: %d hits / %d lookups (%.1f%% hit rate), %d bypassed\n",
		m.Cache.Hits, lookups, m.Cache.HitRate*100, m.Cache.Bypass)
	if m.InterarrivalUS.Count > 0 {
		fmt.Fprintf(w, "inter-arrival: p50=%dµs p95=%dµs p99=%dµs\n",
			m.InterarrivalUS.P50US, m.InterarrivalUS.P95US, m.InterarrivalUS.P99US)
	}
	if len(m.Errors) > 0 {
		fmt.Fprintln(w, "\nerrors:")
		codes := make([]string, 0, len(m.Errors))
		for c := range m.Errors {
			codes = append(codes, c)
		}
		sort.Strings(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "  %-20s %d\n", c, m.Errors[c])
		}
	}

	if len(m.Shards) > 0 {
		fmt.Fprintln(w, "\nper-shard heat (load as multiple of mean):")
		for _, sh := range m.Shards {
			mark := ""
			if sh.Heat >= 2 {
				mark = "  ← HOT"
			}
			fmt.Fprintf(w, "  shard %-3d %8d queries  share=%5.1f%%  heat=%.2f  cache-hit=%5.1f%%  mean=%dµs%s\n",
				sh.Shard, sh.Queries, sh.Share*100, sh.Heat, sh.CacheHitRate*100, sh.MeanLatencyUS, mark)
		}
	}

	if len(m.HotNodes) > 0 {
		fmt.Fprintln(w, "\ntop hot source nodes (space-saving; count may overestimate by err):")
		for _, e := range m.HotNodes {
			fmt.Fprintf(w, "  node %-10d %8d", e.Key, e.Count)
			if e.Err > 0 {
				fmt.Fprintf(w, " (±%d)", e.Err)
			}
			fmt.Fprintln(w)
		}
	}

	if len(m.RepeatQueries) > 0 {
		fmt.Fprintln(w, "\nrepeat-query clusters:")
		for _, e := range m.RepeatQueries {
			fmt.Fprintf(w, "  %-40s ×%d\n", e.Key, e.Count)
		}
	}

	if len(m.Actions) > 0 {
		fmt.Fprintln(w, "\nsuggested actions:")
		for _, a := range m.Actions {
			fmt.Fprintf(w, "  [%s] %s — %s\n", a.Kind, a.Target, a.Detail)
		}
	} else {
		fmt.Fprintln(w, "\nno actions suggested (no hot shards or dominant repeat clusters)")
	}
}

func pct(n, total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(n) / float64(total) * 100
}
