package analytics

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"road/internal/obs"
)

// --- Space-saving sketch ---

func TestSpaceSavingExactWhenUnderCapacity(t *testing.T) {
	s := NewSpaceSaving[int64](8)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			s.Add(int64(i))
		}
	}
	top := s.Top(0)
	if len(top) != 5 {
		t.Fatalf("got %d entries, want 5", len(top))
	}
	// Under capacity nothing is ever evicted: counts exact, errors zero.
	for rank, e := range top {
		wantKey := int64(4 - rank)
		wantCount := uint64(wantKey + 1)
		if e.Key != wantKey || e.Count != wantCount || e.Err != 0 {
			t.Errorf("rank %d: got key=%d count=%d err=%d, want key=%d count=%d err=0",
				rank, e.Key, e.Count, e.Err, wantKey, wantCount)
		}
	}
}

func TestSpaceSavingHeavyHittersSurviveSkew(t *testing.T) {
	// 4 heavy keys in a stream of 400 distinct light keys, sketch of 16:
	// every heavy key must be retained and rank in the top 4, and
	// Count-Err must lower-bound its true frequency.
	s := NewSpaceSaving[int64](16)
	const heavyCount = 200
	for round := 0; round < heavyCount; round++ {
		for heavy := int64(0); heavy < 4; heavy++ {
			s.Add(heavy)
		}
		s.Add(int64(1000 + round*2))
		s.Add(int64(1001 + round*2))
	}
	top := s.Top(4)
	seen := map[int64]TopEntry[int64]{}
	for _, e := range top {
		seen[e.Key] = e
	}
	for heavy := int64(0); heavy < 4; heavy++ {
		e, ok := seen[heavy]
		if !ok {
			t.Fatalf("heavy key %d missing from top-4: %v", heavy, top)
		}
		if e.Count < heavyCount {
			t.Errorf("key %d: count %d underestimates true frequency %d", heavy, e.Count, heavyCount)
		}
		if e.Count-e.Err > heavyCount {
			t.Errorf("key %d: guaranteed count %d exceeds true frequency %d", heavy, e.Count-e.Err, heavyCount)
		}
	}
}

// --- Model construction ---

// rec builds a minimal successful query record.
func rec(op string, node int64, home int, durUS int64, cache string) obs.QueryRecord {
	return obs.QueryRecord{Op: op, Node: node, Home: home, K: 4, DurationUS: durUS, Cache: cache}
}

func TestHeatRankingMatchesKnownDistribution(t *testing.T) {
	// 1000 queries over 4 shards with shares 0.6/0.2/0.1/0.1: the mean
	// per-shard load is 250, so shard 0's heat is exactly 2.4 and only
	// shard 0 crosses the 2.0 hot factor.
	b := NewBuilder(Config{})
	shares := map[int]int{0: 600, 1: 200, 2: 100, 3: 100}
	for shardID, n := range shares {
		for i := 0; i < n; i++ {
			b.Add(rec("knn", int64(shardID*10000+i), shardID, 100, "miss"))
		}
	}
	m := b.Build()

	if m.Queries != 1000 {
		t.Fatalf("queries = %d, want 1000", m.Queries)
	}
	if len(m.Shards) != 4 {
		t.Fatalf("got %d shard entries, want 4", len(m.Shards))
	}
	// Sorted by load: shard 0 first, with the known share and heat.
	if m.Shards[0].Shard != 0 || m.Shards[0].Queries != 600 {
		t.Fatalf("hottest shard = %+v, want shard 0 with 600 queries", m.Shards[0])
	}
	if got := m.Shards[0].Heat; got < 2.39 || got > 2.41 {
		t.Errorf("shard 0 heat = %g, want 2.4", got)
	}
	if got := m.Shards[0].Share; got < 0.59 || got > 0.61 {
		t.Errorf("shard 0 share = %g, want 0.6", got)
	}

	var hotActions []Action
	for _, a := range m.Actions {
		if a.Kind == "replicate-or-repartition" {
			hotActions = append(hotActions, a)
		}
	}
	if len(hotActions) != 1 || hotActions[0].Target != "shard 0" {
		t.Errorf("hot-shard actions = %+v, want exactly one targeting shard 0", hotActions)
	}
}

func TestRepeatQueryClusterAction(t *testing.T) {
	b := NewBuilder(Config{RepeatMin: 10})
	// One query repeated 50 times, plus unique noise below the threshold.
	for i := 0; i < 50; i++ {
		b.Add(rec("knn", 7, 0, 100, "hit"))
	}
	for i := int64(0); i < 20; i++ {
		b.Add(rec("knn", 100+i, 0, 100, "miss"))
	}
	m := b.Build()

	if len(m.RepeatQueries) == 0 {
		t.Fatal("no repeat-query clusters detected")
	}
	if top := m.RepeatQueries[0]; top.Count != 50 || !strings.Contains(top.Key, "n=7") {
		t.Errorf("top repeat cluster = %+v, want the node-7 query with count 50", top)
	}
	var cacheActions int
	for _, a := range m.Actions {
		if a.Kind == "semantic-cache" {
			cacheActions++
		}
	}
	if cacheActions != 1 {
		t.Errorf("semantic-cache actions = %d, want 1 (noise queries are below RepeatMin)", cacheActions)
	}
}

func TestBuilderAggregates(t *testing.T) {
	b := NewBuilder(Config{})
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		r := rec("knn", int64(i), -1, int64(100+i), "hit")
		if i%2 == 1 {
			r = rec("within", int64(i), -1, int64(200+i), "miss")
			r.Radius = 50
		}
		r.TS = base.Add(time.Duration(i) * 10 * time.Millisecond).Format(time.RFC3339Nano)
		b.Add(r)
	}
	errRec := rec("knn", 99, -1, 5, "")
	errRec.Code = "no_such_node"
	errRec.Truncated = true
	b.Add(errRec)
	b.AddMalformed(3)
	m := b.Build()

	if m.Queries != 11 || m.Malformed != 3 || m.Truncated != 1 {
		t.Errorf("queries/malformed/truncated = %d/%d/%d, want 11/3/1", m.Queries, m.Malformed, m.Truncated)
	}
	if m.Mix["knn"] != 6 || m.Mix["within"] != 5 {
		t.Errorf("mix = %v, want knn:6 within:5", m.Mix)
	}
	if m.Errors["no_such_node"] != 1 {
		t.Errorf("errors = %v, want no_such_node:1", m.Errors)
	}
	if m.Cache.Hits != 5 || m.Cache.Misses != 5 || m.Cache.Bypass != 1 {
		t.Errorf("cache = %+v, want 5 hits / 5 misses / 1 bypass", m.Cache)
	}
	if m.Cache.HitRate != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", m.Cache.HitRate)
	}
	// 10 timestamped records 10ms apart: 90ms span, 9 inter-arrival gaps.
	if m.SpanSeconds < 0.089 || m.SpanSeconds > 0.091 {
		t.Errorf("span = %gs, want 0.09", m.SpanSeconds)
	}
	if m.InterarrivalUS.Count != 9 || m.InterarrivalUS.P50US != 10000 {
		t.Errorf("interarrival = %+v, want 9 gaps with p50 10000µs", m.InterarrivalUS)
	}
	if len(m.Shards) != 0 {
		t.Errorf("shards = %+v, want none (all homes unknown)", m.Shards)
	}
	if m.Latency["knn"].Count != 6 {
		t.Errorf("knn latency count = %d, want 6", m.Latency["knn"].Count)
	}
}

// --- Scanning ---

func TestScanReaderSkipsMalformed(t *testing.T) {
	input := strings.Join([]string{
		`{"ts":"2026-08-07T12:00:00Z","op":"knn","node":1,"home":0,"duration_us":100}`,
		`{"ts":"2026-08-07T12:00:01Z","op":"knn","node":2,"home"`, // torn line
		`not json at all`,
		``,           // blank lines are not malformed
		`{"node":3}`, // parses but has no op
		`{"ts":"2026-08-07T12:00:02Z","op":"within","node":4,"home":1,"radius":5,"duration_us":200}`,
	}, "\n") + "\n"

	var got []obs.QueryRecord
	bad, err := ScanReader(strings.NewReader(input), func(r obs.QueryRecord) { got = append(got, r) })
	if err != nil {
		t.Fatal(err)
	}
	if bad != 3 {
		t.Errorf("malformed = %d, want 3", bad)
	}
	if len(got) != 2 || got[0].Node != 1 || got[1].Op != "within" {
		t.Errorf("parsed records = %+v, want nodes 1 and 4", got)
	}
}

func TestLogSegments(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.jsonl")
	if got := LogSegments(path); len(got) != 1 || got[0] != path {
		t.Errorf("without rotation: %v, want [%s]", got, path)
	}
	if err := os.WriteFile(path+".1", []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := LogSegments(path); len(got) != 2 || got[0] != path+".1" || got[1] != path {
		t.Errorf("with rotation: %v, want [.1 then current]", got)
	}
}

func TestScanFilesAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.jsonl")
	old := `{"ts":"2026-08-07T11:00:00Z","op":"knn","node":1,"home":0,"duration_us":10}` + "\n"
	cur := `{"ts":"2026-08-07T12:00:00Z","op":"knn","node":2,"home":0,"duration_us":20}` + "\ngarbage\n"
	if err := os.WriteFile(path+".1", []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(cur), 0o644); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(Config{})
	if err := ScanFiles(b, LogSegments(path)...); err != nil {
		t.Fatal(err)
	}
	m := b.Build()
	if m.Queries != 2 || m.Malformed != 1 {
		t.Errorf("queries/malformed = %d/%d, want 2/1", m.Queries, m.Malformed)
	}
}

// --- Rolling window ---

func TestWindowRollsOldestOut(t *testing.T) {
	w := NewWindow(8)
	for i := int64(0); i < 20; i++ {
		w.Add(rec("knn", i, 0, 100, "miss"))
	}
	if w.Len() != 8 {
		t.Fatalf("len = %d, want 8", w.Len())
	}
	m := w.Model(Config{})
	if m.Queries != 8 {
		t.Fatalf("model queries = %d, want 8 (window bound)", m.Queries)
	}
	// Only the last 8 nodes (12..19) survive; each appears exactly once.
	for _, e := range m.HotNodes {
		if e.Key < 12 || e.Key > 19 {
			t.Errorf("evicted node %d still in the model", e.Key)
		}
	}
}

func TestWindowNilSafe(t *testing.T) {
	var w *Window
	w.Add(rec("knn", 1, 0, 100, "miss")) // must not panic
	if w.Len() != 0 {
		t.Errorf("nil window len = %d", w.Len())
	}
	if m := w.Model(Config{}); m.Queries != 0 {
		t.Errorf("nil window model queries = %d", m.Queries)
	}
	if NewWindow(0) != nil || NewWindow(-1) != nil {
		t.Error("NewWindow(<=0) must return nil")
	}
}

func TestReportRenders(t *testing.T) {
	b := NewBuilder(Config{})
	for i := 0; i < 30; i++ {
		b.Add(rec("knn", 7, 0, 100, "hit"))
		b.Add(rec("within", int64(i), 1, 300, "miss"))
	}
	var sb strings.Builder
	Report(&sb, b.Build())
	out := sb.String()
	for _, want := range []string{"knn", "within", "shard", fmt.Sprint(60)} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
