package analytics

import (
	"bufio"
	"encoding/json"
	"io"
	"os"

	"road/internal/obs"
)

// maxLineBytes bounds one JSONL line; records are a few hundred bytes,
// so 1 MiB only guards against a corrupted segment.
const maxLineBytes = 1 << 20

// ScanReader streams JSONL query records from r into fn. Malformed
// lines — torn by a crash mid-write, truncated by rotation on an old
// build, or plain corruption — are counted and skipped, never fatal:
// an analytics pass must survive an imperfect log. Returns the count
// of malformed lines; err is only an underlying read error.
func ScanReader(r io.Reader, fn func(obs.QueryRecord)) (malformed int64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec obs.QueryRecord
		if json.Unmarshal(line, &rec) != nil || rec.Op == "" {
			malformed++
			continue
		}
		fn(rec)
	}
	return malformed, sc.Err()
}

// LogSegments returns the on-disk segments of a rotated query log in
// chronological order: path+".1" (the previous generation) if it
// exists, then path itself.
func LogSegments(path string) []string {
	var segs []string
	if _, err := os.Stat(path + ".1"); err == nil {
		segs = append(segs, path+".1")
	}
	return append(segs, path)
}

// ScanFiles streams every record in paths (in order) into b,
// accounting malformed lines. A missing file is an error; a malformed
// line is not.
func ScanFiles(b *Builder, paths ...string) error {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		bad, err := ScanReader(f, b.Add)
		f.Close()
		b.AddMalformed(bad)
		if err != nil {
			return err
		}
	}
	return nil
}
