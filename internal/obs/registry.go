// Package obs is the dependency-free observability layer shared by the
// serving stack: a small metrics registry rendered in the Prometheus
// text exposition format, request-scoped query traces carried through
// context, a sampled JSONL query log, and the nearest-rank percentile
// helpers the benchmarks report with.
//
// Everything here is plain standard library. Metric updates on the
// query hot path are one or two atomic adds; collection work (label
// formatting, map walks, callback gauges) happens only at scrape time.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing metric. The zero value is
// ready to use, but counters are normally obtained from a Registry so
// they appear in the exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// A Histogram counts observations into fixed cumulative buckets, in
// the Prometheus style: bucket i counts observations <= Buckets[i],
// plus an implicit +Inf bucket. Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // math.Float64bits accumulator
	count  atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds. The +Inf bucket is implicit.
func NewHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates the q-th quantile (0 < q < 1) of the observations
// by linear interpolation inside the bucket the rank falls in — the
// standard Prometheus histogram_quantile estimate. With no observations
// it returns 0; a rank landing in the +Inf bucket returns the largest
// finite bound. The remote shard client derives its hedging delay from
// this (duplicate a straggler read after the p99 of observed RPC
// latencies).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (h.bounds[i]-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// A Sample is one series produced by a collector callback: a label
// string (`k="v",k2="v2"` without braces, empty for none) and a value.
type Sample struct {
	Labels string
	Value  float64
}

// metric is anything a family can expose.
type metric interface {
	samples() []Sample
}

type counterMetric struct {
	labels string
	c      *Counter
}

func (m counterMetric) samples() []Sample {
	return []Sample{{Labels: m.labels, Value: float64(m.c.Value())}}
}

type gaugeMetric struct {
	labels string
	fn     func() float64
}

func (m gaugeMetric) samples() []Sample {
	return []Sample{{Labels: m.labels, Value: m.fn()}}
}

type collectorMetric struct {
	fn func() []Sample
}

func (m collectorMetric) samples() []Sample { return m.fn() }

type histogramMetric struct {
	labels string
	h      *Histogram
}

// family groups all series sharing one metric name, so HELP/TYPE
// lines are emitted exactly once per name.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	metrics []metric
	hists   []histogramMetric
}

// A Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration is typically done once at
// startup; Write may be called concurrently with metric updates.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string) *family {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	return f
}

// Counter registers (or fetches) the counter series name{labels}.
// labels is a raw `k="v"` list without braces; pass "" for none.
func (r *Registry) Counter(name, labels, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "counter")
	for _, m := range f.metrics {
		if cm, ok := m.(counterMetric); ok && cm.labels == labels {
			return cm.c
		}
	}
	c := &Counter{}
	f.metrics = append(f.metrics, counterMetric{labels: labels, c: c})
	return c
}

// Gauge registers a gauge series whose value is produced by fn at
// scrape time.
func (r *Registry) Gauge(name, labels, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "gauge")
	f.metrics = append(f.metrics, gaugeMetric{labels: labels, fn: fn})
}

// CollectorVec registers a whole family (typ "counter" or "gauge")
// whose series are produced fresh by collect at every scrape — used
// for label sets not known until scrape time, such as per-shard
// counters read from the router.
func (r *Registry) CollectorVec(name, typ, help string, collect func() []Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typ)
	f.metrics = append(f.metrics, collectorMetric{fn: collect})
}

// Histogram registers (or fetches) the histogram series name{labels}
// over the given bucket upper bounds.
func (r *Registry) Histogram(name, labels, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "histogram")
	for _, hm := range f.hists {
		if hm.labels == labels {
			return hm.h
		}
	}
	h := NewHistogram(bounds)
	f.hists = append(f.hists, histogramMetric{labels: labels, h: h})
	return h
}

// Write renders every registered family in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) Write(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, m := range f.metrics {
			for _, s := range m.samples() {
				writeSample(bw, f.name, s.Labels, s.Value)
			}
		}
		for _, hm := range f.hists {
			writeHistogram(bw, f.name, hm.labels, hm.h)
		}
	}
	return bw.Flush()
}

func writeSample(w *bufio.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
}

func writeHistogram(w *bufio.Writer, name, labels string, h *Histogram) {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(w, name+"_bucket", joinLabels(labels, `le="`+formatValue(b)+`"`), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(w, name+"_bucket", joinLabels(labels, `le="+Inf"`), float64(cum))
	writeSample(w, name+"_sum", labels, h.Sum())
	writeSample(w, name+"_count", labels, float64(h.Count()))
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
