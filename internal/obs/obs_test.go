package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("road_requests_total", `endpoint="knn"`, "Requests served.")
	c.Add(3)
	r.Counter("road_requests_total", `endpoint="within"`, "Requests served.").Inc()
	r.Gauge("road_epoch", "", "Store epoch.", func() float64 { return 7 })
	h := r.Histogram("road_latency_seconds", "", "Latency.", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)
	r.CollectorVec("road_shard_queries_total", "counter", "Per-shard queries.", func() []Sample {
		return []Sample{
			{Labels: `shard="0"`, Value: 2},
			{Labels: `shard="1"`, Value: 5},
		}
	})

	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP road_requests_total Requests served.
# TYPE road_requests_total counter
road_requests_total{endpoint="knn"} 3
road_requests_total{endpoint="within"} 1
# HELP road_epoch Store epoch.
# TYPE road_epoch gauge
road_epoch 7
# HELP road_latency_seconds Latency.
# TYPE road_latency_seconds histogram
road_latency_seconds_bucket{le="0.001"} 2
road_latency_seconds_bucket{le="0.01"} 3
road_latency_seconds_bucket{le="+Inf"} 4
road_latency_seconds_sum 5.006
road_latency_seconds_count 4
# HELP road_shard_queries_total Per-shard queries.
# TYPE road_shard_queries_total counter
road_shard_queries_total{shard="0"} 2
road_shard_queries_total{shard="1"} 5
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistryExpositionWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "", "A.").Add(1)
	r.Histogram("b_seconds", `op="x"`, "B.", []float64{1, 2}).Observe(1.5)
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Errorf("malformed comment line: %q", line)
			}
			continue
		}
		// Every sample line is "name[{labels}] value".
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		series, val := line[:i], line[i+1:]
		if series == "" || val == "" {
			t.Errorf("malformed sample line: %q", line)
		}
		if open := strings.IndexByte(series, '{'); open >= 0 && !strings.HasSuffix(series, "}") {
			t.Errorf("unbalanced label braces: %q", line)
		}
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(1) // le="1" is inclusive
	h.Observe(10)
	h.Observe(11)
	if got := h.counts[0].Load(); got != 1 {
		t.Errorf("bucket le=1: got %d, want 1", got)
	}
	if got := h.counts[1].Load(); got != 1 {
		t.Errorf("bucket le=10: got %d, want 1", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Errorf("bucket +Inf: got %d, want 1", got)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	// 100 samples 1..100: p99 must be 99, p50 must be 50.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	if got := Percentile(vals, 0.99); got != 99 {
		t.Errorf("p99 of 1..100: got %v, want 99", got)
	}
	if got := Percentile(vals, 0.50); got != 50 {
		t.Errorf("p50 of 1..100: got %v, want 50", got)
	}
	if got := Percentile(vals, 1.0); got != 100 {
		t.Errorf("p100 of 1..100: got %v, want 100", got)
	}

	// The small-sample case the floored index understated: with 10
	// samples, the old int(p*(n-1)) gave index 8 for p99 (the 9th
	// value); nearest-rank requires the 10th.
	small := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := PercentileDuration(small, 0.99); got != 10 {
		t.Errorf("p99 of 10 samples: got %v, want 10", got)
	}
	if got := PercentileDuration(small, 0.95); got != 10 {
		t.Errorf("p95 of 10 samples: got %v, want 10", got)
	}
	if got := PercentileDuration(nil, 0.99); got != 0 {
		t.Errorf("p99 of empty: got %v, want 0", got)
	}
}

func TestTraceLegs(t *testing.T) {
	ctx, tr := WithTrace(context.Background())
	if FromContext(ctx) != tr {
		t.Fatal("FromContext did not return the attached trace")
	}
	done := tr.StartLeg("home_fast", 2)
	done(17)
	legs := tr.Legs()
	if len(legs) != 1 {
		t.Fatalf("got %d legs, want 1", len(legs))
	}
	if legs[0].Name != "home_fast" || legs[0].Shard != 2 || legs[0].Pops != 17 {
		t.Errorf("unexpected leg: %+v", legs[0])
	}
	if legs[0].DurationUS < 0 {
		t.Errorf("negative duration: %+v", legs[0])
	}

	// Nil trace: everything is a no-op.
	var nilTr *Trace
	nilTr.StartLeg("x", 0)(1)
	if got := nilTr.Legs(); got != nil {
		t.Errorf("nil trace legs: got %v", got)
	}
	if FromContext(context.Background()) != nil {
		t.Error("FromContext on bare context: want nil")
	}
}

func TestQueryLogSampling(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	l, err := OpenQueryLog(path, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		l.Log(QueryRecord{Op: "knn", Node: int64(i)})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("sample=3 over 9 queries: got %d lines, want 3\n%s", len(lines), data)
	}
	for _, ln := range lines {
		if !strings.Contains(ln, `"op":"knn"`) {
			t.Errorf("unexpected line: %s", ln)
		}
	}
}

func TestQueryLogRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	l, err := OpenQueryLog(path, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		l.Log(QueryRecord{TS: "2026-08-07T00:00:00Z", Op: "within", Node: int64(i), Radius: 123.5})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 256 {
		t.Errorf("live file %d bytes, want <= 256", st.Size())
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Errorf("rotated file missing: %v", err)
	}
	// Every line in both files must be valid JSONL.
	for _, p := range []string{path, path + ".1"} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, ln := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if !strings.HasPrefix(ln, "{") || !strings.HasSuffix(ln, "}") {
				t.Errorf("%s: malformed line %q", p, ln)
			}
		}
	}
}

func TestTraceSubLegsAndID(t *testing.T) {
	_, tr := WithTrace(context.Background())
	tr.SetID("abc-000001")
	if tr.ID() != "abc-000001" {
		t.Errorf("ID = %q, want abc-000001", tr.ID())
	}
	tr.Add(Leg{
		Name: "rpc", Shard: 1, DurationUS: 100, WireUS: 40,
		Sub: []Leg{
			{Name: "host_queue", Shard: 1, DurationUS: 5},
			{Name: "host_search", Shard: 1, DurationUS: 55, Pops: 9, Reads: 3},
		},
	})
	legs := tr.Legs()
	if len(legs) != 1 || len(legs[0].Sub) != 2 {
		t.Fatalf("legs = %+v, want one rpc leg with two sub legs", legs)
	}
	// Sub legs and Reads must survive a JSON round trip (the wire path).
	data, err := json.Marshal(legs)
	if err != nil {
		t.Fatal(err)
	}
	var back []Leg
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back[0].Sub[1].Name != "host_search" || back[0].Sub[1].Reads != 3 {
		t.Errorf("round-tripped sub leg = %+v", back[0].Sub[1])
	}

	// Nil safety.
	var nilTr *Trace
	nilTr.SetID("x")
	if nilTr.ID() != "" {
		t.Error("nil trace must report an empty ID")
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		seen[id] = true
		if len(id) < 10 || !strings.Contains(id, "-") {
			t.Fatalf("malformed request ID %q", id)
		}
	}
}

// TestQueryLogConcurrentRotation hammers a tiny-rotation log from many
// goroutines and then verifies no line in either segment was torn or
// lost: rotation is serialized against writes under the log's mutex.
func TestQueryLogConcurrentRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	l, err := OpenQueryLog(path, 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Log(QueryRecord{
					TS: "2026-08-07T00:00:00.000000000Z", Op: "knn",
					Node: int64(w*perWriter + i), K: 8, DurationUS: 123,
				})
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Seen != writers*perWriter {
		t.Errorf("seen = %d, want %d", st.Seen, writers*perWriter)
	}
	if st.Rotations == 0 {
		t.Error("no rotations happened; shrink the max size")
	}
	if st.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", st.Dropped)
	}

	// Count the surviving lines across both segments; every one must be
	// complete valid JSON. Lines rotated out of .1 are gone by design,
	// but nothing the final two segments hold may be torn.
	var lines int
	for _, p := range []string{path + ".1", path} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, ln := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if ln == "" {
				continue
			}
			var rec QueryRecord
			if err := json.Unmarshal([]byte(ln), &rec); err != nil {
				t.Fatalf("%s: torn line %q: %v", p, ln, err)
			}
			if rec.Op != "knn" {
				t.Fatalf("%s: wrong record %+v", p, rec)
			}
			lines++
		}
	}
	if lines == 0 {
		t.Error("no lines survived")
	}
}

func TestQueryLogStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	l, err := OpenQueryLog(path, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Log(QueryRecord{Op: "knn", Node: int64(i)})
	}
	st := l.Stats()
	l.Close()
	if st.Seen != 10 || st.Rotations != 0 || st.Dropped != 0 {
		t.Errorf("stats = %+v, want seen=10 rotations=0 dropped=0", st)
	}
	var nilLog *QueryLog
	if nilLog.Stats() != (QueryLogStats{}) {
		t.Error("nil log stats must be zero")
	}
}

func TestQueryLogAppendsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	for i := 0; i < 2; i++ {
		l, err := OpenQueryLog(path, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		l.Log(QueryRecord{Op: "path", Node: int64(i)})
		l.Close()
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 2 {
		t.Errorf("got %d lines after reopen, want 2", n)
	}
}
