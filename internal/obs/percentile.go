package obs

import (
	"math"
	"sort"
	"time"
)

// Percentile returns the p-quantile (0 < p <= 1) of sorted ascending
// values by the nearest-rank definition: the ceil(p*n)-th smallest
// value. Unlike a floored index, p=0.99 over a small sample returns a
// value at least as large as 99% of observations. Returns 0 for an
// empty slice.
func Percentile(sorted []float64, p float64) float64 {
	i := rank(len(sorted), p)
	if i < 0 {
		return 0
	}
	return sorted[i]
}

// PercentileDuration is Percentile over sorted durations.
func PercentileDuration(sorted []time.Duration, p float64) time.Duration {
	i := rank(len(sorted), p)
	if i < 0 {
		return 0
	}
	return sorted[i]
}

// rank maps (n, p) to the nearest-rank index, or -1 when n == 0.
func rank(n int, p float64) int {
	if n == 0 {
		return -1
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// SortDurations sorts latencies ascending in place, as Percentile
// requires.
func SortDurations(d []time.Duration) {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
}
