package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// A QueryRecord is one line of the structured query log: everything
// needed to replay or analyze the query offline — what was asked,
// what it cost, and how the cache treated it.
type QueryRecord struct {
	// TS is the completion time, RFC3339 with nanoseconds.
	TS string `json:"ts"`
	// ID is the query's request ID, the join key against its trace and
	// any slow-query line it produced.
	ID string `json:"id,omitempty"`
	// Op is the operation: "knn", "within", "path", or "batch".
	Op string `json:"op"`
	// Node is the query's origin intersection.
	Node int64 `json:"node"`
	// Home is the shard holding the query node, or -1 when unknown
	// (single-index deployments). Always emitted: shard IDs start at 0.
	Home int `json:"home"`
	// K is the kNN result bound (kNN only).
	K int `json:"k,omitempty"`
	// Radius is the range bound (within only).
	Radius float64 `json:"radius,omitempty"`
	// Attr is the object category filter, 0 for any.
	Attr int32 `json:"attr,omitempty"`
	// Shards is the number of shards the search touched.
	Shards int `json:"shards,omitempty"`
	// Pops is the number of heap pops the search cost.
	Pops int `json:"pops"`
	// Results is the number of results returned.
	Results int `json:"results"`
	// DurationUS is the server-side wall time in microseconds.
	DurationUS int64 `json:"duration_us"`
	// Cache is the result-cache outcome: "hit", "miss", or "bypass"
	// (uncacheable or trace-carrying requests).
	Cache string `json:"cache,omitempty"`
	// Code is the typed error code on failure, empty on success.
	Code string `json:"code,omitempty"`
	// Truncated reports whether the search stopped early (cancellation
	// or budget).
	Truncated bool `json:"truncated,omitempty"`
}

// A QueryLog writes sampled QueryRecords as JSON lines with size-based
// rotation: when the file would exceed MaxBytes it is renamed to
// path+".1" (replacing any previous rotation) and restarted. Safe for
// concurrent use; a nil *QueryLog discards everything.
type QueryLog struct {
	mu        sync.Mutex
	path      string
	f         *os.File
	size      int64
	max       int64
	sample    uint64
	n         uint64 // queries seen, for sampling
	rotations uint64
	dropped   uint64 // sampled-in records lost to write/rotate failures
}

// QueryLogStats reports a log's lifetime write behaviour.
type QueryLogStats struct {
	Seen      uint64 // queries offered to the log
	Rotations uint64 // completed .1 rotations
	Dropped   uint64 // sampled-in records lost to write or rotate failures
}

// DefaultQueryLogMaxBytes is the rotation threshold used when the
// caller passes maxBytes <= 0.
const DefaultQueryLogMaxBytes = 64 << 20

// OpenQueryLog opens (appending) a query log at path. Every sample-th
// query is written (1 logs all; <=0 is treated as 1). maxBytes <= 0
// uses DefaultQueryLogMaxBytes.
func OpenQueryLog(path string, sample int, maxBytes int64) (*QueryLog, error) {
	if sample <= 0 {
		sample = 1
	}
	if maxBytes <= 0 {
		maxBytes = DefaultQueryLogMaxBytes
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open query log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: stat query log: %w", err)
	}
	return &QueryLog{path: path, f: f, size: st.Size(), max: maxBytes, sample: uint64(sample)}, nil
}

// Log writes rec if it falls in the sample. Errors are swallowed: the
// query log must never fail a query.
func (l *QueryLog) Log(rec QueryRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.n++
	if (l.n-1)%l.sample != 0 {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	if l.size+int64(len(line)) > l.max && l.size > 0 {
		l.rotateLocked()
	}
	if l.f == nil {
		l.dropped++
		return
	}
	// One whole line per Write call, under l.mu: rotation can never
	// observe (or shift into .1) a torn JSONL line, and readers of the
	// rotated segment see only complete records.
	if n, err := l.f.Write(line); err == nil {
		l.size += int64(n)
	} else {
		l.dropped++
	}
}

// rotateLocked renames the current file to path+".1" and reopens. It
// runs under l.mu — concurrent Log calls are serialized against the
// shift, so no writer can land a line across the rename boundary. If
// the rename fails the current file is reopened in append mode (never
// O_TRUNC, which would destroy the lines already logged).
func (l *QueryLog) rotateLocked() {
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	if err := os.Rename(l.path, l.path+".1"); err != nil {
		flags = os.O_CREATE | os.O_WRONLY | os.O_APPEND
	} else {
		l.rotations++
	}
	f, err := os.OpenFile(l.path, flags, 0o644)
	if err != nil {
		return // l.f stays nil; Log counts the drops
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return
	}
	l.f = f
	l.size = st.Size()
}

// Stats returns the log's lifetime counters. Safe on nil.
func (l *QueryLog) Stats() QueryLogStats {
	if l == nil {
		return QueryLogStats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return QueryLogStats{Seen: l.n, Rotations: l.rotations, Dropped: l.dropped}
}

// Close flushes and closes the log file. Safe on nil.
func (l *QueryLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
