package obs

// Shared histogram bucket layouts, so the router's /metrics and the
// shard hosts' /metrics bin identical quantities identically and the
// two expositions can be compared or aggregated series-for-series.
// Latencies are in seconds (the Prometheus convention); pops and page
// reads are raw per-query counts in roughly-doubling buckets so the
// paper's cost metrics are readable off /metrics.
var (
	// LatencyBuckets bins request/RPC wall times from 100µs to 2.5s.
	LatencyBuckets = []float64{
		100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3,
		25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1, 2.5,
	}
	// PopsBuckets bins heap pops (settled nodes) per query.
	PopsBuckets = []float64{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536}
	// ReadsBuckets bins simulated page reads per query.
	ReadsBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}
)
