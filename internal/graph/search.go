package graph

import (
	"math"

	"road/internal/pqueue"
)

// Search is a reusable Dijkstra/A* workspace over one graph. It amortizes
// the per-query allocation of distance and parent arrays with epoch
// stamping, so issuing thousands of queries (as the benchmark harness does)
// costs no steady-state allocation. A Search is not safe for concurrent use.
type Search struct {
	g      *Graph
	dist   []float64
	parent []NodeID // parent node in the search tree
	via    []EdgeID // edge used to reach the node
	epoch  []uint32
	cur    uint32
	pq     *pqueue.IndexedQueue

	// Visited is the number of nodes settled by the last run — the
	// traversal-cost metric reported alongside times in the evaluation.
	Visited int
}

// NewSearch returns a workspace for searches over g. The workspace remains
// valid across edge re-weights and removals; it must be recreated only if
// nodes are added.
func NewSearch(g *Graph) *Search {
	n := g.NumNodes()
	return &Search{
		g:      g,
		dist:   make([]float64, n),
		parent: make([]NodeID, n),
		via:    make([]EdgeID, n),
		epoch:  make([]uint32, n),
		pq:     pqueue.NewIndexed(n),
	}
}

func (s *Search) begin() {
	s.cur++
	if s.cur == 0 { // epoch counter wrapped: clear stamps
		for i := range s.epoch {
			s.epoch[i] = 0
		}
		s.cur = 1
	}
	s.pq.Reset()
	s.Visited = 0
}

func (s *Search) touch(n NodeID) {
	if s.epoch[n] != s.cur {
		s.epoch[n] = s.cur
		s.dist[n] = math.Inf(1)
		s.parent[n] = NoNode
		s.via[n] = NoEdge
	}
}

// Dist returns the distance to n computed by the last run, or +Inf if n was
// not reached.
func (s *Search) Dist(n NodeID) float64 {
	if s.epoch[n] != s.cur {
		return math.Inf(1)
	}
	return s.dist[n]
}

// Reached reports whether the last run settled or relaxed node n.
func (s *Search) Reached(n NodeID) bool {
	return s.epoch[n] == s.cur && !math.IsInf(s.dist[n], 1)
}

// Parent returns n's predecessor in the last run's search tree — the next
// hop from n back toward the source — or NoNode for the source itself and
// unreached nodes.
func (s *Search) Parent(n NodeID) NodeID {
	if s.epoch[n] != s.cur {
		return NoNode
	}
	return s.parent[n]
}

// Path reconstructs the node sequence from the last run's source to n,
// inclusive. It returns nil if n was not reached.
func (s *Search) Path(n NodeID) []NodeID {
	if !s.Reached(n) {
		return nil
	}
	var rev []NodeID
	for cur := n; cur != NoNode; cur = s.parent[cur] {
		rev = append(rev, cur)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathEdges reconstructs the edge sequence from the source to n.
func (s *Search) PathEdges(n NodeID) []EdgeID {
	if !s.Reached(n) {
		return nil
	}
	var rev []EdgeID
	for cur := n; s.via[cur] != NoEdge; cur = s.parent[cur] {
		rev = append(rev, s.via[cur])
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// EdgeFilter restricts a traversal to edges for which it returns true.
// A nil EdgeFilter admits every live edge.
type EdgeFilter func(EdgeID) bool

// Seed is one source of a multi-source traversal: a node paired with the
// initial distance it is reached at. Sharded search enters a region shard
// through its border nodes this way, each border carrying the global
// distance already accumulated outside the shard.
type Seed struct {
	Node NodeID
	Dist float64
}

// Options tunes a Dijkstra run.
type Options struct {
	// MaxDist stops expansion beyond this distance (inclusive). Zero means
	// unbounded.
	MaxDist float64
	// Filter restricts traversal to admitted edges (nil = all).
	Filter EdgeFilter
	// Targets, when non-empty, stops the run once all listed nodes are
	// settled.
	Targets []NodeID
	// OnSettle, when non-nil, is invoked for every settled node with its
	// final distance. Returning false aborts the run.
	OnSettle func(n NodeID, d float64) bool
}

// Run executes Dijkstra from src with the given options. Distances and
// paths are afterwards available via Dist/Path/PathEdges.
func (s *Search) Run(src NodeID, opt Options) {
	s.RunSeeded([]Seed{{Node: src}}, opt)
}

// RunSeeded executes Dijkstra from several seeds at once, each starting at
// its own initial distance. The resulting Dist(n) is min over seeds of
// seed.Dist + d(seed.Node, n); Path(n) walks back to the winning seed.
func (s *Search) RunSeeded(seeds []Seed, opt Options) {
	s.begin()
	for _, sd := range seeds {
		s.touch(sd.Node)
		if sd.Dist < s.dist[sd.Node] {
			s.dist[sd.Node] = sd.Dist
			s.parent[sd.Node] = NoNode
			s.via[sd.Node] = NoEdge
			s.pq.Push(sd.Node, sd.Dist)
		}
	}

	remaining := 0
	var want []bool
	if len(opt.Targets) > 0 {
		want = make([]bool, s.g.NumNodes())
		for _, t := range opt.Targets {
			if !want[t] {
				want[t] = true
				remaining++
			}
		}
	}

	bound := opt.MaxDist
	if bound == 0 {
		bound = math.Inf(1)
	}

	for s.pq.Len() > 0 {
		n, d, _ := s.pq.Pop()
		if d > bound {
			break
		}
		s.Visited++
		if opt.OnSettle != nil && !opt.OnSettle(n, d) {
			return
		}
		if want != nil && want[n] {
			want[n] = false
			remaining--
			if remaining == 0 {
				return
			}
		}
		for _, h := range s.g.adj[n] {
			if opt.Filter != nil && !opt.Filter(h.Edge) {
				continue
			}
			nd := d + s.g.edges[h.Edge].Weight
			if nd > bound {
				continue
			}
			s.touch(h.To)
			if nd < s.dist[h.To] {
				s.dist[h.To] = nd
				s.parent[h.To] = n
				s.via[h.To] = h.Edge
				s.pq.Push(h.To, nd)
			}
		}
	}
}

// ShortestDist returns the network distance between src and dst, or +Inf
// if dst is unreachable. It runs a target-pruned Dijkstra.
func (s *Search) ShortestDist(src, dst NodeID) float64 {
	if src == dst {
		return 0
	}
	s.Run(src, Options{Targets: []NodeID{dst}})
	return s.Dist(dst)
}

// ShortestPath returns the node sequence and distance of the shortest path
// from src to dst, or (nil, +Inf) if unreachable.
func (s *Search) ShortestPath(src, dst NodeID) ([]NodeID, float64) {
	if src == dst {
		return []NodeID{src}, 0
	}
	s.Run(src, Options{Targets: []NodeID{dst}})
	return s.Path(dst), s.Dist(dst)
}

// AStar finds the shortest path distance from src to dst guided by the
// Euclidean straight-line heuristic scaled by hScale. The heuristic is
// admissible iff every edge weight ≥ hScale × Euclidean length of the edge;
// use EuclideanScale to derive the largest safe scale for a graph. It
// returns +Inf if dst is unreachable.
func (s *Search) AStar(src, dst NodeID, hScale float64) float64 {
	return s.AStarVisit(src, dst, hScale, nil)
}

// AStarVisit is AStar with a per-settled-node callback (used to charge
// simulated I/O for every node record the search touches).
func (s *Search) AStarVisit(src, dst NodeID, hScale float64, onSettle func(NodeID)) float64 {
	return s.AStarBounded(src, dst, hScale, math.Inf(1), onSettle)
}

// AStarBounded is AStarVisit with a distance bound: once the smallest
// f-value in the frontier exceeds bound the search gives up and returns
// +Inf, since the true distance provably exceeds bound.
func (s *Search) AStarBounded(src, dst NodeID, hScale, bound float64, onSettle func(NodeID)) float64 {
	s.begin()
	g := s.g
	goal := g.coords[dst]
	h := func(n NodeID) float64 { return hScale * g.coords[n].Dist(goal) }

	s.touch(src)
	s.dist[src] = 0
	s.pq.Push(src, h(src))

	for s.pq.Len() > 0 {
		n, f, _ := s.pq.Pop()
		if f > bound {
			return math.Inf(1)
		}
		s.Visited++
		if onSettle != nil {
			onSettle(n)
		}
		if n == dst {
			return s.dist[n]
		}
		dn := s.dist[n]
		for _, half := range g.adj[n] {
			nd := dn + g.edges[half.Edge].Weight
			s.touch(half.To)
			if nd < s.dist[half.To] {
				s.dist[half.To] = nd
				s.parent[half.To] = n
				s.via[half.To] = half.Edge
				s.pq.Push(half.To, nd+h(half.To))
			}
		}
	}
	return math.Inf(1)
}

// EuclideanScale returns the largest factor c such that for every live edge
// (u,v): weight ≥ c × EuclideanDist(u,v). Using this as AStar's hScale makes
// the Euclidean heuristic admissible. Returns 0 for graphs with a zero-length
// edge (heuristic unusable) and 1 for empty graphs.
func EuclideanScale(g *Graph) float64 {
	c := math.Inf(1)
	for id := range g.edges {
		e := &g.edges[id]
		if e.Removed {
			continue
		}
		d := g.coords[e.U].Dist(g.coords[e.V])
		if d == 0 {
			return 0
		}
		if r := e.Weight / d; r < c {
			c = r
		}
	}
	if math.IsInf(c, 1) {
		return 1
	}
	return c
}

// farthestFrom returns the reached node with maximum distance from src and
// that distance.
func (s *Search) farthestFrom(src NodeID) (NodeID, float64) {
	best, bestD := src, 0.0
	s.Run(src, Options{OnSettle: func(n NodeID, d float64) bool {
		if d > bestD {
			best, bestD = n, d
		}
		return true
	}})
	return best, bestD
}
