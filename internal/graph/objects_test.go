package graph

import (
	"testing"

	"road/internal/geom"
)

func TestObjectAddGet(t *testing.T) {
	g := line(3)
	os := NewObjectSet(g)
	e := g.EdgeBetween(0, 1)
	o, err := os.Add(e, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if o.DU != 0.25 || o.DV != 0.75 {
		t.Fatalf("offsets = %g,%g, want 0.25,0.75", o.DU, o.DV)
	}
	got, ok := os.Get(o.ID)
	if !ok || got != o {
		t.Fatalf("Get = %v,%v", got, ok)
	}
	if os.Len() != 1 {
		t.Fatalf("Len = %d, want 1", os.Len())
	}
}

func TestObjectAddRejectsBadOffset(t *testing.T) {
	g := line(3)
	os := NewObjectSet(g)
	e := g.EdgeBetween(0, 1)
	if _, err := os.Add(e, -0.1, 0); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := os.Add(e, 1.5, 0); err == nil {
		t.Fatal("offset beyond edge weight accepted")
	}
}

func TestObjectAddRejectsRemovedEdge(t *testing.T) {
	g := line(3)
	os := NewObjectSet(g)
	e := g.EdgeBetween(0, 1)
	g.RemoveEdge(e)
	if _, err := os.Add(e, 0.5, 0); err == nil {
		t.Fatal("placement on removed edge accepted")
	}
}

func TestObjectRemove(t *testing.T) {
	g := line(3)
	os := NewObjectSet(g)
	e := g.EdgeBetween(0, 1)
	o := os.MustAdd(e, 0.5, 0)
	if !os.Remove(o.ID) {
		t.Fatal("Remove returned false for existing object")
	}
	if os.Remove(o.ID) {
		t.Fatal("double remove returned true")
	}
	if os.Len() != 0 {
		t.Fatalf("Len = %d after remove", os.Len())
	}
	if ids := os.OnEdge(e); len(ids) != 0 {
		t.Fatalf("OnEdge = %v after remove", ids)
	}
}

func TestObjectOnEdgeSorted(t *testing.T) {
	g := line(3)
	os := NewObjectSet(g)
	e := g.EdgeBetween(0, 1)
	o1 := os.MustAdd(e, 0.1, 0)
	o2 := os.MustAdd(e, 0.9, 0)
	o3 := os.MustAdd(e, 0.5, 0)
	ids := os.OnEdge(e)
	if len(ids) != 3 || ids[0] != o1.ID || ids[1] != o2.ID || ids[2] != o3.ID {
		t.Fatalf("OnEdge = %v", ids)
	}
}

func TestObjectNodeDist(t *testing.T) {
	g := New(2, 1)
	a := g.AddNode(geom.Point{})
	b := g.AddNode(geom.Point{X: 10})
	e := g.MustAddEdge(a, b, 10)
	os := NewObjectSet(g)
	o := os.MustAdd(e, 3, 0)
	if d := os.NodeDist(o, a); d != 3 {
		t.Fatalf("NodeDist(a) = %g, want 3", d)
	}
	if d := os.NodeDist(o, b); d != 7 {
		t.Fatalf("NodeDist(b) = %g, want 7", d)
	}
}

func TestObjectSetAttr(t *testing.T) {
	g := line(3)
	os := NewObjectSet(g)
	o := os.MustAdd(g.EdgeBetween(0, 1), 0.5, 1)
	if !os.SetAttr(o.ID, 42) {
		t.Fatal("SetAttr returned false")
	}
	got, _ := os.Get(o.ID)
	if got.Attr != 42 {
		t.Fatalf("Attr = %d, want 42", got.Attr)
	}
	if os.SetAttr(999, 1) {
		t.Fatal("SetAttr on missing object returned true")
	}
}

func TestObjectAllDeterministic(t *testing.T) {
	g := line(5)
	os := NewObjectSet(g)
	for i := 0; i < 4; i++ {
		os.MustAdd(g.EdgeBetween(NodeID(i), NodeID(i+1)), 0.5, 0)
	}
	all := os.All()
	if len(all) != 4 {
		t.Fatalf("All len = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatal("All not sorted by ID")
		}
	}
}

func TestObjectCloneIndependent(t *testing.T) {
	g := line(4)
	os := NewObjectSet(g)
	o := os.MustAdd(g.EdgeBetween(0, 1), 0.5, 0)
	g2 := g.Clone()
	os2 := os.Clone(g2)
	os2.Remove(o.ID)
	if os.Len() != 1 {
		t.Fatal("removing from clone affected original")
	}
	o2 := os2.MustAdd(g2.EdgeBetween(1, 2), 0.25, 0)
	if _, ok := os.Get(o2.ID); ok {
		t.Fatal("adding to clone leaked into original")
	}
}
