package graph

import (
	"fmt"
	"sort"

	"road/internal/apierr"
)

// ObjectID identifies a spatial object (point of interest).
type ObjectID = int32

// Object is a spatial object residing on an edge (paper §3.1): it sits at
// distance DU from the edge's U endpoint along the segment, so its distance
// to V is Weight−DU at placement time. Objects carry an attribute category
// used by attribute predicates (e.g. restaurant type); Attr 0 matches the
// wildcard predicate.
type Object struct {
	ID   ObjectID
	Edge EdgeID
	DU   float64 // distance from the edge's U endpoint
	DV   float64 // distance from the edge's V endpoint
	Attr int32   // attribute category for predicate filtering
}

// ObjectSet is an ordered collection of objects mapped onto one graph.
// It is the content-provider side of the paper's architecture: the network
// (Graph) and the objects (ObjectSet) are maintained independently and
// combined by an index framework at query time.
type ObjectSet struct {
	g       *Graph
	objects map[ObjectID]Object
	byEdge  map[EdgeID][]ObjectID
	nextID  ObjectID
}

// NewObjectSet returns an empty object set over g.
func NewObjectSet(g *Graph) *ObjectSet {
	return &ObjectSet{
		g:       g,
		objects: make(map[ObjectID]Object),
		byEdge:  make(map[EdgeID][]ObjectID),
	}
}

// Graph returns the network the objects live on.
func (os *ObjectSet) Graph() *Graph { return os.g }

// Len returns the number of objects.
func (os *ObjectSet) Len() int { return len(os.objects) }

// Add places an object on edge e at distance du from the edge's U endpoint
// and returns it. du must lie within [0, weight(e)].
func (os *ObjectSet) Add(e EdgeID, du float64, attr int32) (Object, error) {
	edge := os.g.Edge(e)
	if edge.Removed {
		return Object{}, fmt.Errorf("graph: cannot place object on removed edge %d: %w", e, apierr.ErrEdgeClosed)
	}
	if du < 0 || du > edge.Weight {
		return Object{}, fmt.Errorf("graph: object offset %v outside edge %d of weight %v: %w", du, e, edge.Weight, apierr.ErrInvalidRequest)
	}
	o := Object{ID: os.nextID, Edge: e, DU: du, DV: edge.Weight - du, Attr: attr}
	os.nextID++
	os.objects[o.ID] = o
	os.byEdge[e] = append(os.byEdge[e], o.ID)
	return o, nil
}

// MustAdd is Add that panics on error; for generators and tests.
func (os *ObjectSet) MustAdd(e EdgeID, du float64, attr int32) Object {
	o, err := os.Add(e, du, attr)
	if err != nil {
		panic(err)
	}
	return o
}

// Remove deletes object id. It reports whether the object existed.
func (os *ObjectSet) Remove(id ObjectID) bool {
	o, ok := os.objects[id]
	if !ok {
		return false
	}
	delete(os.objects, id)
	ids := os.byEdge[o.Edge]
	for i := range ids {
		if ids[i] == id {
			ids[i] = ids[len(ids)-1]
			os.byEdge[o.Edge] = ids[:len(ids)-1]
			break
		}
	}
	if len(os.byEdge[o.Edge]) == 0 {
		delete(os.byEdge, o.Edge)
	}
	return true
}

// Get returns object id.
func (os *ObjectSet) Get(id ObjectID) (Object, bool) {
	o, ok := os.objects[id]
	return o, ok
}

// SetAttr changes the attribute category of object id.
func (os *ObjectSet) SetAttr(id ObjectID, attr int32) bool {
	o, ok := os.objects[id]
	if !ok {
		return false
	}
	o.Attr = attr
	os.objects[id] = o
	return true
}

// Relocate moves an existing object to edge e at offset du, keeping its ID
// and attribute. Used when an edge's distance changes and objects on it are
// rescaled in place.
func (os *ObjectSet) Relocate(id ObjectID, e EdgeID, du float64) error {
	o, ok := os.objects[id]
	if !ok {
		return fmt.Errorf("graph: object %d not found", id)
	}
	edge := os.g.Edge(e)
	if du < 0 || du > edge.Weight {
		return fmt.Errorf("graph: object offset %v outside edge %d of weight %v", du, e, edge.Weight)
	}
	// Detach from the old edge list.
	ids := os.byEdge[o.Edge]
	for i := range ids {
		if ids[i] == id {
			ids[i] = ids[len(ids)-1]
			os.byEdge[o.Edge] = ids[:len(ids)-1]
			break
		}
	}
	if len(os.byEdge[o.Edge]) == 0 {
		delete(os.byEdge, o.Edge)
	}
	o.Edge = e
	o.DU = du
	o.DV = edge.Weight - du
	os.objects[id] = o
	os.byEdge[e] = append(os.byEdge[e], id)
	return nil
}

// NextID returns the ID the next added object will receive. Together with
// RestoreObject it lets a snapshot reconstruct a set whose ID sequence —
// including gaps left by deletions — continues exactly where it left off.
func (os *ObjectSet) NextID() ObjectID { return os.nextID }

// SetNextID forces the ID counter, for snapshot restoration. It must be
// larger than every restored object's ID.
func (os *ObjectSet) SetNextID(id ObjectID) { os.nextID = id }

// RestoreObject reinstates an object with its exact identity and geometry,
// for snapshot restoration. Unlike Add it keeps o.ID and o.DV verbatim;
// the edge must be live and the offset within the edge.
func (os *ObjectSet) RestoreObject(o Object) error {
	if o.Edge < 0 || int(o.Edge) >= os.g.NumEdges() {
		return fmt.Errorf("graph: restored object %d on unknown edge %d", o.ID, o.Edge)
	}
	edge := os.g.Edge(o.Edge)
	if edge.Removed {
		return fmt.Errorf("graph: restored object %d on removed edge %d", o.ID, o.Edge)
	}
	if o.DU < 0 || o.DU > edge.Weight || o.DV < 0 {
		return fmt.Errorf("graph: restored object %d offset %v outside edge %d of weight %v", o.ID, o.DU, o.Edge, edge.Weight)
	}
	if _, dup := os.objects[o.ID]; dup {
		return fmt.Errorf("graph: duplicate restored object %d", o.ID)
	}
	os.objects[o.ID] = o
	os.byEdge[o.Edge] = append(os.byEdge[o.Edge], o.ID)
	if o.ID >= os.nextID {
		os.nextID = o.ID + 1
	}
	return nil
}

// OnEdge returns the IDs of objects residing on edge e, sorted ascending.
func (os *ObjectSet) OnEdge(e EdgeID) []ObjectID {
	ids := append([]ObjectID(nil), os.byEdge[e]...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// All returns every object, sorted by ID (deterministic iteration).
func (os *ObjectSet) All() []Object {
	out := make([]Object, 0, len(os.objects))
	for _, o := range os.objects {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NodeDist returns the distance from object o to node n, which must be an
// endpoint of o's edge.
func (os *ObjectSet) NodeDist(o Object, n NodeID) float64 {
	e := os.g.Edge(o.Edge)
	if e.U == n {
		return o.DU
	}
	return o.DV
}

// Clone returns an independent deep copy bound to graph g (typically a
// Clone of the original graph, so update experiments do not interfere).
func (os *ObjectSet) Clone(g *Graph) *ObjectSet {
	c := NewObjectSet(g)
	c.nextID = os.nextID
	for id, o := range os.objects {
		c.objects[id] = o
	}
	for e, ids := range os.byEdge {
		c.byEdge[e] = append([]ObjectID(nil), ids...)
	}
	return c
}
