package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickDijkstraSymmetry: on undirected graphs, d(u,v) == d(v,u).
func TestQuickDijkstraSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 40+rng.Intn(60), rng.Intn(40))
		s := NewSearch(g)
		for i := 0; i < 5; i++ {
			u := NodeID(rng.Intn(g.NumNodes()))
			v := NodeID(rng.Intn(g.NumNodes()))
			duv := s.ShortestDist(u, v)
			dvu := s.ShortestDist(v, u)
			if math.Abs(duv-dvu) > 1e-9*math.Max(1, duv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTriangleInequality: d(a,c) ≤ d(a,b) + d(b,c).
func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 30+rng.Intn(50), rng.Intn(30))
		s := NewSearch(g)
		for i := 0; i < 5; i++ {
			a := NodeID(rng.Intn(g.NumNodes()))
			b := NodeID(rng.Intn(g.NumNodes()))
			c := NodeID(rng.Intn(g.NumNodes()))
			dab := s.ShortestDist(a, b)
			dbc := s.ShortestDist(b, c)
			dac := s.ShortestDist(a, c)
			if dac > dab+dbc+1e-9*math.Max(1, dab+dbc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPathLengthMatchesDistance: the reconstructed path's edge
// weights sum to the reported distance and every hop is a real edge.
func TestQuickPathLengthMatchesDistance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 30+rng.Intn(50), rng.Intn(30))
		s := NewSearch(g)
		u := NodeID(rng.Intn(g.NumNodes()))
		v := NodeID(rng.Intn(g.NumNodes()))
		path, d := s.ShortestPath(u, v)
		if len(path) == 0 {
			return math.IsInf(d, 1) || u == v
		}
		var total float64
		for i := 1; i < len(path); i++ {
			e := g.EdgeBetween(path[i-1], path[i])
			if e == NoEdge {
				return false
			}
			total += g.Weight(e)
		}
		return math.Abs(total-d) <= 1e-9*math.Max(1, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRemoveRestoreRoundTrip: removing and restoring a random edge
// leaves all pairwise distances unchanged.
func TestQuickRemoveRestoreRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 30, 20)
		s := NewSearch(g)
		u := NodeID(rng.Intn(g.NumNodes()))
		v := NodeID(rng.Intn(g.NumNodes()))
		before := s.ShortestDist(u, v)
		e := EdgeID(rng.Intn(g.NumEdges()))
		if err := g.RemoveEdge(e); err != nil {
			return false
		}
		if err := g.RestoreEdge(e); err != nil {
			return false
		}
		after := s.ShortestDist(u, v)
		return math.Abs(before-after) <= 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
