// Package graph models a road network as a weighted undirected graph:
// nodes are road intersections with planar coordinates, edges are road
// segments with positive weights (travel distance, trip time, or toll —
// the paper's "distance"). It provides the traversal primitives every
// search approach in this repository is built on: Dijkstra expansion in
// several flavours, A*, and incremental mutation (edge re-weighting,
// addition and removal) needed by ROAD's maintenance algorithms (§5.2).
package graph

import (
	"errors"
	"fmt"
	"math"

	"road/internal/apierr"
	"road/internal/geom"
)

// NodeID identifies a node (road intersection). IDs are dense, starting at 0.
type NodeID = int32

// EdgeID identifies an edge (road segment). IDs are dense, starting at 0.
// Removed edges keep their IDs but are absent from adjacency lists.
type EdgeID = int32

// NoNode marks the absence of a node (e.g. the parent of a search root).
const NoNode NodeID = -1

// NoEdge marks the absence of an edge.
const NoEdge EdgeID = -1

// Half is one direction of an undirected edge as stored in adjacency lists.
type Half struct {
	To   NodeID
	Edge EdgeID
}

// Edge is a road segment between nodes U and V with a positive weight.
type Edge struct {
	U, V    NodeID
	Weight  float64
	Removed bool
}

// Other returns the endpoint of e opposite to n.
func (e Edge) Other(n NodeID) NodeID {
	if e.U == n {
		return e.V
	}
	return e.U
}

// Graph is a mutable weighted undirected road network.
// The zero value is an empty graph ready for AddNode/AddEdge.
type Graph struct {
	coords []geom.Point
	adj    [][]Half
	edges  []Edge
}

// New returns an empty graph with capacity hints for n nodes and m edges.
func New(n, m int) *Graph {
	return &Graph{
		coords: make([]geom.Point, 0, n),
		adj:    make([][]Half, 0, n),
		edges:  make([]Edge, 0, m),
	}
}

// ReserveEdges grows the edge slice capacity so a bulk reload (snapshot
// restore) avoids incremental reallocation.
func (g *Graph) ReserveEdges(m int) {
	if cap(g.edges)-len(g.edges) < m {
		edges := make([]Edge, len(g.edges), len(g.edges)+m)
		copy(edges, g.edges)
		g.edges = edges
	}
}

// NumNodes returns the number of nodes ever added.
func (g *Graph) NumNodes() int { return len(g.coords) }

// NumEdges returns the number of edges ever added, including removed ones.
// Use CountActiveEdges for the live count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// CountActiveEdges returns the number of non-removed edges.
func (g *Graph) CountActiveEdges() int {
	n := 0
	for i := range g.edges {
		if !g.edges[i].Removed {
			n++
		}
	}
	return n
}

// AddNode adds a node at point p and returns its ID.
func (g *Graph) AddNode(p geom.Point) NodeID {
	id := NodeID(len(g.coords))
	g.coords = append(g.coords, p)
	g.adj = append(g.adj, nil)
	return id
}

// Coord returns the planar coordinates of node n.
func (g *Graph) Coord(n NodeID) geom.Point { return g.coords[n] }

// Bounds returns the bounding rectangle of all node coordinates.
func (g *Graph) Bounds() geom.Rect {
	r := geom.EmptyRect()
	for _, p := range g.coords {
		r = r.Extend(p)
	}
	return r
}

// ErrBadEdge reports an invalid edge operation.
var ErrBadEdge = errors.New("graph: invalid edge")

// AddEdge adds an undirected edge between u and v with the given weight and
// returns its ID. Self-loops and non-positive weights are rejected; parallel
// edges are permitted (real road networks have them).
func (g *Graph) AddEdge(u, v NodeID, weight float64) (EdgeID, error) {
	if u == v {
		return NoEdge, fmt.Errorf("%w: self-loop at node %d", ErrBadEdge, u)
	}
	if u < 0 || v < 0 || int(u) >= len(g.adj) || int(v) >= len(g.adj) {
		return NoEdge, fmt.Errorf("%w: endpoint out of range (%d,%d)", ErrBadEdge, u, v)
	}
	if weight <= 0 || math.IsNaN(weight) {
		return NoEdge, fmt.Errorf("%w: weight %v must be positive", ErrBadEdge, weight)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{U: u, V: v, Weight: weight})
	g.adj[u] = append(g.adj[u], Half{To: v, Edge: id})
	g.adj[v] = append(g.adj[v], Half{To: u, Edge: id})
	return id, nil
}

// MustAddEdge is AddEdge that panics on error; for generators and tests.
func (g *Graph) MustAddEdge(u, v NodeID, weight float64) EdgeID {
	id, err := g.AddEdge(u, v, weight)
	if err != nil {
		panic(err)
	}
	return id
}

// Edge returns the edge record for id.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Weight returns the weight of edge id.
func (g *Graph) Weight(id EdgeID) float64 { return g.edges[id].Weight }

// SetWeight changes the weight of edge id (the §5.2.1 distance-change
// event). The new weight must be positive.
func (g *Graph) SetWeight(id EdgeID, weight float64) error {
	if weight <= 0 || math.IsNaN(weight) {
		return fmt.Errorf("%w: weight %v must be positive", ErrBadEdge, weight)
	}
	if g.edges[id].Removed {
		return fmt.Errorf("%w: edge %d is removed: %w", ErrBadEdge, id, apierr.ErrEdgeClosed)
	}
	g.edges[id].Weight = weight
	return nil
}

// RemoveEdge detaches edge id from the graph (the §5.2.2 road-closure
// event). The edge record is kept, flagged Removed, so IDs stay stable.
func (g *Graph) RemoveEdge(id EdgeID) error {
	e := &g.edges[id]
	if e.Removed {
		return fmt.Errorf("%w: edge %d already removed: %w", ErrBadEdge, id, apierr.ErrEdgeClosed)
	}
	e.Removed = true
	g.adj[e.U] = dropHalf(g.adj[e.U], id)
	g.adj[e.V] = dropHalf(g.adj[e.V], id)
	return nil
}

// RestoreEdge re-attaches a previously removed edge with its stored weight.
func (g *Graph) RestoreEdge(id EdgeID) error {
	e := &g.edges[id]
	if !e.Removed {
		return fmt.Errorf("%w: edge %d is not removed: %w", ErrBadEdge, id, apierr.ErrEdgeNotClosed)
	}
	e.Removed = false
	g.adj[e.U] = append(g.adj[e.U], Half{To: e.V, Edge: id})
	g.adj[e.V] = append(g.adj[e.V], Half{To: e.U, Edge: id})
	return nil
}

func dropHalf(hs []Half, id EdgeID) []Half {
	for i := range hs {
		if hs[i].Edge == id {
			hs[i] = hs[len(hs)-1]
			return hs[:len(hs)-1]
		}
	}
	return hs
}

// Neighbors returns the adjacency list of node n. The slice is owned by the
// graph and must not be mutated or retained across graph mutations.
func (g *Graph) Neighbors(n NodeID) []Half { return g.adj[n] }

// Degree returns the number of live edges incident to n.
func (g *Graph) Degree(n NodeID) int { return len(g.adj[n]) }

// EdgeBetween returns the minimum-weight live edge connecting u and v, or
// NoEdge if none exists.
func (g *Graph) EdgeBetween(u, v NodeID) EdgeID {
	best := NoEdge
	bestW := math.Inf(1)
	for _, h := range g.adj[u] {
		if h.To == v && g.edges[h.Edge].Weight < bestW {
			best = h.Edge
			bestW = g.edges[h.Edge].Weight
		}
	}
	return best
}

// Clone returns a deep copy of the graph; mutations to either copy do not
// affect the other. Baselines clone so update benchmarks are independent.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		coords: append([]geom.Point(nil), g.coords...),
		adj:    make([][]Half, len(g.adj)),
		edges:  append([]Edge(nil), g.edges...),
	}
	for i, hs := range g.adj {
		c.adj[i] = append([]Half(nil), hs...)
	}
	return c
}

// ComponentOf returns the IDs of all nodes reachable from start.
func (g *Graph) ComponentOf(start NodeID) []NodeID {
	seen := make([]bool, len(g.adj))
	stack := []NodeID{start}
	seen[start] = true
	var comp []NodeID
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		comp = append(comp, n)
		for _, h := range g.adj[n] {
			if !seen[h.To] {
				seen[h.To] = true
				stack = append(stack, h.To)
			}
		}
	}
	return comp
}

// Connected reports whether every node with at least one edge is reachable
// from every other such node (isolated nodes are ignored).
func (g *Graph) Connected() bool {
	start := NodeID(-1)
	for n := range g.adj {
		if len(g.adj[n]) > 0 {
			start = NodeID(n)
			break
		}
	}
	if start < 0 {
		return true
	}
	comp := g.ComponentOf(start)
	withEdges := 0
	for n := range g.adj {
		if len(g.adj[n]) > 0 {
			withEdges++
		}
	}
	return len(comp) >= withEdges
}

// EstimateDiameter approximates the network diameter (largest shortest-path
// distance) with a double Dijkstra sweep: from an arbitrary node find the
// farthest node a, then the farthest distance from a. Exact on trees, a
// good lower bound elsewhere; the paper's range-query radii are fractions
// of this value.
func (g *Graph) EstimateDiameter() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	s := NewSearch(g)
	a, _ := s.farthestFrom(0)
	_, d := s.farthestFrom(a)
	return d
}
