package graph

import (
	"math"
	"math/rand"
	"testing"

	"road/internal/geom"
)

// line builds a path graph 0-1-2-...-(n-1) with unit weights.
func line(n int) *Graph {
	g := New(n, n-1)
	for i := 0; i < n; i++ {
		g.AddNode(geom.Point{X: float64(i)})
	}
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(NodeID(i), NodeID(i+1), 1)
	}
	return g
}

// grid builds a w×h grid graph with unit weights; node (x,y) has id y*w+x.
func grid(w, h int) *Graph {
	g := New(w*h, 2*w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.AddNode(geom.Point{X: float64(x), Y: float64(y)})
		}
	}
	id := func(x, y int) NodeID { return NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.MustAddEdge(id(x, y), id(x+1, y), 1)
			}
			if y+1 < h {
				g.MustAddEdge(id(x, y), id(x, y+1), 1)
			}
		}
	}
	return g
}

// randomConnected builds a connected random graph: a random spanning tree
// plus extra random edges, with Euclidean-length weights scaled by ≥1.
func randomConnected(rng *rand.Rand, n, extraEdges int) *Graph {
	g := New(n, n-1+extraEdges)
	for i := 0; i < n; i++ {
		g.AddNode(geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
	}
	for i := 1; i < n; i++ {
		j := NodeID(rng.Intn(i))
		w := g.Coord(NodeID(i)).Dist(g.Coord(j))*(1+rng.Float64()) + 0.01
		g.MustAddEdge(NodeID(i), j, w)
	}
	for k := 0; k < extraEdges; k++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		w := g.Coord(u).Dist(g.Coord(v))*(1+rng.Float64()) + 0.01
		g.MustAddEdge(u, v, w)
	}
	return g
}

func TestAddNodeEdgeBasics(t *testing.T) {
	g := New(0, 0)
	a := g.AddNode(geom.Point{X: 1, Y: 2})
	b := g.AddNode(geom.Point{X: 3, Y: 4})
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", g.NumNodes())
	}
	if g.Coord(a) != (geom.Point{X: 1, Y: 2}) {
		t.Fatalf("Coord(a) = %v", g.Coord(a))
	}
	e, err := g.AddEdge(a, b, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Weight(e) != 5 {
		t.Fatalf("Weight = %g, want 5", g.Weight(e))
	}
	if got := g.Edge(e).Other(a); got != b {
		t.Fatalf("Other(a) = %d, want %d", got, b)
	}
	if got := g.Edge(e).Other(b); got != a {
		t.Fatalf("Other(b) = %d, want %d", got, a)
	}
	if g.Degree(a) != 1 || g.Degree(b) != 1 {
		t.Fatalf("degrees = %d,%d, want 1,1", g.Degree(a), g.Degree(b))
	}
}

func TestAddEdgeRejectsInvalid(t *testing.T) {
	g := New(0, 0)
	a := g.AddNode(geom.Point{})
	b := g.AddNode(geom.Point{})
	if _, err := g.AddEdge(a, a, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := g.AddEdge(a, b, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := g.AddEdge(a, b, -1); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := g.AddEdge(a, b, math.NaN()); err == nil {
		t.Fatal("NaN weight accepted")
	}
	if _, err := g.AddEdge(a, 99, 1); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
}

func TestSetWeight(t *testing.T) {
	g := line(3)
	e := g.EdgeBetween(0, 1)
	if err := g.SetWeight(e, 7); err != nil {
		t.Fatal(err)
	}
	if g.Weight(e) != 7 {
		t.Fatalf("Weight = %g, want 7", g.Weight(e))
	}
	if err := g.SetWeight(e, -1); err == nil {
		t.Fatal("negative reweight accepted")
	}
}

func TestRemoveRestoreEdge(t *testing.T) {
	g := line(3)
	e := g.EdgeBetween(0, 1)
	if err := g.RemoveEdge(e); err != nil {
		t.Fatal(err)
	}
	if g.EdgeBetween(0, 1) != NoEdge {
		t.Fatal("removed edge still in adjacency")
	}
	if g.CountActiveEdges() != 1 {
		t.Fatalf("active edges = %d, want 1", g.CountActiveEdges())
	}
	if err := g.RemoveEdge(e); err == nil {
		t.Fatal("double remove accepted")
	}
	if err := g.RestoreEdge(e); err != nil {
		t.Fatal(err)
	}
	if g.EdgeBetween(0, 1) != e {
		t.Fatal("restored edge missing from adjacency")
	}
	if err := g.RestoreEdge(e); err == nil {
		t.Fatal("double restore accepted")
	}
}

func TestEdgeBetweenParallelPicksLightest(t *testing.T) {
	g := New(2, 2)
	a := g.AddNode(geom.Point{})
	b := g.AddNode(geom.Point{X: 1})
	g.MustAddEdge(a, b, 9)
	light := g.MustAddEdge(a, b, 2)
	if got := g.EdgeBetween(a, b); got != light {
		t.Fatalf("EdgeBetween = %d, want lightest %d", got, light)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := line(4)
	c := g.Clone()
	e := c.EdgeBetween(1, 2)
	if err := c.RemoveEdge(e); err != nil {
		t.Fatal(err)
	}
	if g.EdgeBetween(1, 2) == NoEdge {
		t.Fatal("mutating clone affected original")
	}
	c.AddNode(geom.Point{})
	if g.NumNodes() == c.NumNodes() {
		t.Fatal("node add on clone leaked to original")
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := line(5)
	if !g.Connected() {
		t.Fatal("line graph not connected")
	}
	if got := len(g.ComponentOf(0)); got != 5 {
		t.Fatalf("component size = %d, want 5", got)
	}
	g.RemoveEdge(g.EdgeBetween(2, 3))
	if g.Connected() {
		t.Fatal("cut graph still connected")
	}
	if got := len(g.ComponentOf(0)); got != 3 {
		t.Fatalf("component size after cut = %d, want 3", got)
	}
	if got := len(g.ComponentOf(4)); got != 2 {
		t.Fatalf("far component size = %d, want 2", got)
	}
}

func TestBounds(t *testing.T) {
	g := New(0, 0)
	g.AddNode(geom.Point{X: -1, Y: 5})
	g.AddNode(geom.Point{X: 3, Y: -2})
	b := g.Bounds()
	want := geom.Rect{Min: geom.Point{X: -1, Y: -2}, Max: geom.Point{X: 3, Y: 5}}
	if b != want {
		t.Fatalf("Bounds = %v, want %v", b, want)
	}
}

func TestDijkstraLine(t *testing.T) {
	g := line(10)
	s := NewSearch(g)
	s.Run(0, Options{})
	for i := 0; i < 10; i++ {
		if got := s.Dist(NodeID(i)); got != float64(i) {
			t.Fatalf("Dist(%d) = %g, want %d", i, got, i)
		}
	}
	path := s.Path(9)
	if len(path) != 10 || path[0] != 0 || path[9] != 9 {
		t.Fatalf("Path(9) = %v", path)
	}
	edges := s.PathEdges(9)
	if len(edges) != 9 {
		t.Fatalf("PathEdges len = %d, want 9", len(edges))
	}
}

func TestDijkstraGridDistances(t *testing.T) {
	g := grid(8, 8)
	s := NewSearch(g)
	s.Run(0, Options{})
	// Manhattan distance on a unit grid.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			want := float64(x + y)
			if got := s.Dist(NodeID(y*8 + x)); got != want {
				t.Fatalf("Dist(%d,%d) = %g, want %g", x, y, got, want)
			}
		}
	}
}

func TestDijkstraMaxDist(t *testing.T) {
	g := line(10)
	s := NewSearch(g)
	s.Run(0, Options{MaxDist: 3})
	if !s.Reached(3) {
		t.Fatal("node at bound distance not reached")
	}
	if s.Reached(5) {
		t.Fatal("node beyond bound reached")
	}
}

func TestDijkstraTargetsStopEarly(t *testing.T) {
	g := line(1000)
	s := NewSearch(g)
	s.Run(0, Options{Targets: []NodeID{5}})
	if s.Dist(5) != 5 {
		t.Fatalf("Dist(5) = %g, want 5", s.Dist(5))
	}
	if s.Visited > 7 {
		t.Fatalf("target search visited %d nodes, expected early stop", s.Visited)
	}
}

func TestDijkstraFilter(t *testing.T) {
	// Square 0-1-2-3-0; block edge (0,1): distance to 1 must go the long way.
	g := New(4, 4)
	for i := 0; i < 4; i++ {
		g.AddNode(geom.Point{X: float64(i)})
	}
	e01 := g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 0, 1)
	s := NewSearch(g)
	s.Run(0, Options{Filter: func(e EdgeID) bool { return e != e01 }})
	if got := s.Dist(1); got != 3 {
		t.Fatalf("filtered Dist(1) = %g, want 3", got)
	}
}

func TestDijkstraOnSettleAbort(t *testing.T) {
	g := line(100)
	s := NewSearch(g)
	count := 0
	s.Run(0, Options{OnSettle: func(n NodeID, d float64) bool {
		count++
		return count < 5
	}})
	if count != 5 {
		t.Fatalf("OnSettle called %d times, want 5", count)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := line(4)
	g.RemoveEdge(g.EdgeBetween(1, 2))
	s := NewSearch(g)
	path, d := s.ShortestPath(0, 3)
	if path != nil || !math.IsInf(d, 1) {
		t.Fatalf("unreachable: path=%v d=%g", path, d)
	}
}

func TestShortestPathTrivial(t *testing.T) {
	g := line(4)
	s := NewSearch(g)
	path, d := s.ShortestPath(2, 2)
	if d != 0 || len(path) != 1 || path[0] != 2 {
		t.Fatalf("self path = %v,%g", path, d)
	}
}

func TestSearchReusableAcrossRuns(t *testing.T) {
	g := line(10)
	s := NewSearch(g)
	s.Run(0, Options{})
	s.Run(9, Options{})
	if got := s.Dist(0); got != 9 {
		t.Fatalf("second run Dist(0) = %g, want 9", got)
	}
	// Stale state from the first run must not leak.
	if got := s.Dist(9); got != 0 {
		t.Fatalf("second run Dist(9) = %g, want 0", got)
	}
}

func TestSearchReflectsWeightChange(t *testing.T) {
	g := line(3)
	s := NewSearch(g)
	if d := s.ShortestDist(0, 2); d != 2 {
		t.Fatalf("before reweight: %g", d)
	}
	g.SetWeight(g.EdgeBetween(0, 1), 10)
	if d := s.ShortestDist(0, 2); d != 11 {
		t.Fatalf("after reweight: %g, want 11", d)
	}
}

func TestAStarMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		g := randomConnected(rng, 60, 40)
		scale := EuclideanScale(g)
		if scale <= 0 {
			t.Fatal("EuclideanScale <= 0 on random graph")
		}
		s := NewSearch(g)
		s2 := NewSearch(g)
		for q := 0; q < 10; q++ {
			u := NodeID(rng.Intn(60))
			v := NodeID(rng.Intn(60))
			want := s.ShortestDist(u, v)
			got := s2.AStar(u, v, scale)
			if math.Abs(want-got) > 1e-9 {
				t.Fatalf("trial %d: AStar(%d,%d) = %g, Dijkstra = %g", trial, u, v, got, want)
			}
		}
	}
}

func TestAStarVisitsNoMoreThanDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomConnected(rng, 400, 200)
	scale := EuclideanScale(g)
	s := NewSearch(g)
	totalA, totalD := 0, 0
	for q := 0; q < 50; q++ {
		u := NodeID(rng.Intn(400))
		v := NodeID(rng.Intn(400))
		s.AStar(u, v, scale)
		totalA += s.Visited
		s.Run(u, Options{Targets: []NodeID{v}})
		totalD += s.Visited
	}
	if totalA > totalD {
		t.Fatalf("A* settled %d nodes vs Dijkstra %d; heuristic not helping", totalA, totalD)
	}
}

func TestEuclideanScaleAdmissibility(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomConnected(rng, 100, 80)
	c := EuclideanScale(g)
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(EdgeID(id))
		if e.Removed {
			continue
		}
		eu := g.Coord(e.U).Dist(g.Coord(e.V))
		if e.Weight < c*eu-1e-12 {
			t.Fatalf("edge %d: weight %g < scale %g × euclid %g", id, e.Weight, c, eu)
		}
	}
}

func TestEstimateDiameterLine(t *testing.T) {
	g := line(50)
	if d := g.EstimateDiameter(); d != 49 {
		t.Fatalf("diameter = %g, want 49", d)
	}
}

func TestEstimateDiameterLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomConnected(rng, 80, 40)
	est := g.EstimateDiameter()
	s := NewSearch(g)
	// The estimate must never exceed the true diameter.
	trueDiam := 0.0
	for n := 0; n < g.NumNodes(); n++ {
		s.Run(NodeID(n), Options{})
		for m := 0; m < g.NumNodes(); m++ {
			if d := s.Dist(NodeID(m)); !math.IsInf(d, 1) && d > trueDiam {
				trueDiam = d
			}
		}
	}
	if est > trueDiam+1e-9 {
		t.Fatalf("estimate %g exceeds true diameter %g", est, trueDiam)
	}
	if est < trueDiam/2 {
		t.Fatalf("estimate %g below half of true diameter %g", est, trueDiam)
	}
}

func BenchmarkDijkstraGrid100(b *testing.B) {
	g := grid(100, 100)
	s := NewSearch(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(0, Options{})
	}
}
