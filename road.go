package road

import (
	"errors"
	"fmt"
	"io"

	"road/internal/core"
	"road/internal/geom"
	"road/internal/graph"
	"road/internal/rnet"
	"road/internal/snapshot"
)

// Re-exported identifier types.
type (
	// NodeID identifies a road intersection.
	NodeID = graph.NodeID
	// EdgeID identifies a road segment.
	EdgeID = graph.EdgeID
	// ObjectID identifies a spatial object (point of interest).
	ObjectID = graph.ObjectID
	// Object is a spatial object placed on a road segment.
	Object = graph.Object
	// Result is one query answer: an object and its network distance.
	Result = core.Result
	// Stats reports per-query traversal and I/O cost.
	Stats = core.QueryStats
	// AbstractKind selects the object-abstract representation.
	AbstractKind = core.AbstractKind
)

// Abstract representation choices (see core package for trade-offs).
const (
	AbstractSet   = core.AbstractSet
	AbstractCount = core.AbstractCount
	AbstractBloom = core.AbstractBloom
)

// AnyAttr matches objects of every attribute category.
const AnyAttr int32 = 0

// NoEdge marks the absence of an edge.
const NoEdge = graph.NoEdge

// NetworkBuilder accumulates a road network prior to Open.
type NetworkBuilder struct {
	g *graph.Graph
}

// NewNetworkBuilder returns an empty builder.
func NewNetworkBuilder() *NetworkBuilder {
	return &NetworkBuilder{g: graph.New(0, 0)}
}

// FromGraph wraps an existing graph (e.g. from the dataset generators)
// in a builder.
func FromGraph(g *graph.Graph) *NetworkBuilder {
	return &NetworkBuilder{g: g}
}

// AddNode adds an intersection at map position (x, y) and returns its ID.
func (b *NetworkBuilder) AddNode(x, y float64) NodeID {
	return b.g.AddNode(geom.Point{X: x, Y: y})
}

// AddRoad adds a bidirectional road segment of the given positive distance
// (travel distance, trip time, or toll — any positive metric).
func (b *NetworkBuilder) AddRoad(u, v NodeID, dist float64) (EdgeID, error) {
	return b.g.AddEdge(u, v, dist)
}

// NumNodes returns the number of intersections added so far.
func (b *NetworkBuilder) NumNodes() int { return b.g.NumNodes() }

// NumRoads returns the number of segments added so far.
func (b *NetworkBuilder) NumRoads() int { return b.g.NumEdges() }

// Options tunes DB construction. The zero value picks sensible defaults
// (fanout 4 and a depth suited to the network size, per the paper).
type Options struct {
	// Fanout is the partitioning factor p (power of two ≥ 2; default 4).
	Fanout int
	// Levels is the Rnet hierarchy depth l (default 4, or 8 for networks
	// of 50k+ nodes).
	Levels int
	// Abstract selects the object-abstract representation
	// (default AbstractSet).
	Abstract AbstractKind
	// StorePaths retains shortcut waypoints so result paths can be
	// reconstructed (costs memory).
	StorePaths bool
	// DisableIOSim turns off the simulated page store (slightly faster,
	// no Stats.IO reporting).
	DisableIOSim bool
	// Seed makes partitioning deterministic across runs (default 0).
	Seed int64
}

// DB is an opened ROAD database: one road network with its Rnet hierarchy,
// Route Overlay, and a primary object directory.
type DB struct {
	f *core.Framework

	// sess is the cached session Query batches run on (single-threaded,
	// like every DB-level query method); allocated on first use.
	sess *Session

	// journal, when attached, receives every maintenance op BEFORE it is
	// applied (write-ahead); baseSeq is the journal sequence number the
	// DB's base state (build or loaded snapshot) already includes.
	journal *snapshot.Journal
	baseSeq uint64

	// lastSnapSeq is the journal watermark of the most recent snapshot
	// known to exist on disk (saved by this process, or the one this DB
	// was loaded from) — the highest sequence CompactJournal may discard.
	lastSnapSeq uint64
}

// Open builds the ROAD index over the builder's network. The builder's
// network is adopted by the DB; further mutation must go through DB
// methods.
func Open(b *NetworkBuilder, opts Options) (*DB, error) {
	if b.g.NumNodes() < 2 {
		return nil, fmt.Errorf("road: network needs at least 2 nodes, has %d", b.g.NumNodes())
	}
	rcfg := rnet.DefaultConfig(b.g.NumNodes())
	if opts.Fanout != 0 {
		rcfg.Fanout = opts.Fanout
	}
	if opts.Levels != 0 {
		rcfg.Levels = opts.Levels
	}
	rcfg.StorePaths = opts.StorePaths
	rcfg.Seed = opts.Seed
	cfg := core.Config{Rnet: rcfg, Abstract: opts.Abstract}
	if opts.DisableIOSim {
		cfg.BufferPages = -1
	}
	objects := graph.NewObjectSet(b.g)
	f, err := core.Build(b.g, objects, cfg)
	if err != nil {
		return nil, err
	}
	return &DB{f: f}, nil
}

// OpenWithObjects builds the ROAD index with a pre-populated object set
// (which must be bound to the builder's graph).
func OpenWithObjects(b *NetworkBuilder, objects *graph.ObjectSet, opts Options) (*DB, error) {
	if objects.Graph() != b.g {
		return nil, fmt.Errorf("road: object set bound to a different network")
	}
	db, err := Open(b, opts)
	if err != nil {
		return nil, err
	}
	// Rebuild with the provided set: Open built an empty directory; attach
	// the real one as primary.
	db.f = replaceObjects(db.f, objects, opts)
	return db, nil
}

func replaceObjects(f *core.Framework, objects *graph.ObjectSet, opts Options) *core.Framework {
	// The hierarchy and overlay are object-independent; only the directory
	// is rebuilt — this is exactly the separation ROAD advertises.
	return core.Rebind(f, objects, opts.Abstract)
}

// Framework exposes the underlying core framework for advanced use
// (benchmark harnesses, ablations).
func (db *DB) Framework() *core.Framework { return db.f }

// logOp appends a maintenance op to the attached journal before it is
// applied — the write-ahead ordering crash recovery depends on. With no
// journal attached it is a no-op.
func (db *DB) logOp(op snapshot.Op) error {
	if db.journal == nil {
		return nil
	}
	if _, err := db.journal.Append(op); err != nil {
		return fmt.Errorf("road: journaling %s: %w", op.Kind, err)
	}
	return nil
}

// AddObject places an object on road e at distance offset from the road's
// U endpoint, with an attribute category (use 0 for "untyped").
func (db *DB) AddObject(e EdgeID, offset float64, attr int32) (Object, error) {
	if err := db.logOp(snapshot.Op{Kind: snapshot.OpInsertObject, Edge: e, Value: offset, Attr: attr}); err != nil {
		return Object{}, err
	}
	return db.f.InsertObject(e, offset, attr)
}

// RemoveObject deletes an object.
func (db *DB) RemoveObject(id ObjectID) error {
	if err := db.logOp(snapshot.Op{Kind: snapshot.OpDeleteObject, Object: id}); err != nil {
		return err
	}
	return db.f.DeleteObject(id)
}

// SetObjectAttr changes an object's attribute category.
func (db *DB) SetObjectAttr(id ObjectID, attr int32) error {
	if err := db.logOp(snapshot.Op{Kind: snapshot.OpSetObjectAttr, Object: id, Attr: attr}); err != nil {
		return err
	}
	return db.f.UpdateObjectAttr(id, attr)
}

// SetRoadDistance changes a road's distance metric (e.g. travel time under
// new traffic conditions); the index repairs itself incrementally.
func (db *DB) SetRoadDistance(e EdgeID, dist float64) error {
	if err := db.logOp(snapshot.Op{Kind: snapshot.OpSetDistance, Edge: e, Value: dist}); err != nil {
		return err
	}
	_, err := db.f.SetEdgeWeight(e, dist)
	return err
}

// AddRoad inserts a new road segment between existing intersections.
func (db *DB) AddRoad(u, v NodeID, dist float64) (EdgeID, error) {
	if err := db.logOp(snapshot.Op{Kind: snapshot.OpAddRoad, U: u, V: v, Value: dist}); err != nil {
		return NoEdge, err
	}
	e, _, err := db.f.AddEdge(u, v, dist)
	return e, err
}

// CloseRoad removes a road segment (objects on it are dropped).
func (db *DB) CloseRoad(e EdgeID) error {
	if err := db.logOp(snapshot.Op{Kind: snapshot.OpClose, Edge: e}); err != nil {
		return err
	}
	_, err := db.f.DeleteEdge(e)
	return err
}

// ReopenRoad restores a previously closed road segment.
func (db *DB) ReopenRoad(e EdgeID) error {
	if err := db.logOp(snapshot.Op{Kind: snapshot.OpReopen, Edge: e}); err != nil {
		return err
	}
	_, err := db.f.RestoreEdge(e)
	return err
}

// IndexSizeBytes estimates total index storage.
func (db *DB) IndexSizeBytes() int64 { return db.f.IndexSizeBytes() }

// Epoch returns the database's maintenance epoch: a counter incremented by
// every successful mutating call (AddObject, SetRoadDistance, CloseRoad,
// ...). Cached query answers are valid exactly as long as the epoch they
// were computed under is still current; roadd's result cache is built on
// this. The counter is safe to read concurrently.
func (db *DB) Epoch() uint64 { return db.f.Epoch() }

// --- Persistence (snapshots + write-ahead journal) ---

// Journal is a write-ahead log of maintenance operations; see
// internal/snapshot for the on-disk format and recovery semantics.
type Journal = snapshot.Journal

// OpenJournal opens (or creates) a write-ahead journal at path, repairing
// a torn tail entry left by a crash. Attach it with DB.AttachJournal, or
// replay it over a loaded snapshot with DB.ReplayJournal first.
func OpenJournal(path string) (*Journal, error) { return snapshot.OpenJournal(path) }

// SaveSnapshot serializes the DB — network, Rnet hierarchy with
// shortcuts, objects and Association Directory — to w in the versioned,
// checksummed snapshot format. If a journal is attached, the snapshot
// records the last journal sequence it includes, so a later
// ReplayJournal applies only post-snapshot entries. The caller must
// exclude concurrent mutations (roadd snapshots under its coordinator's
// write lock).
func (db *DB) SaveSnapshot(w io.Writer) error {
	seq := db.snapshotSeq()
	if err := snapshot.Save(db.f, seq, w); err != nil {
		return err
	}
	db.lastSnapSeq = seq
	return nil
}

// SaveSnapshotFile atomically writes a snapshot to path (temp file +
// rename), so a crash mid-save never corrupts the previous snapshot.
func (db *DB) SaveSnapshotFile(path string) error {
	seq := db.snapshotSeq()
	if err := snapshot.SaveFile(db.f, seq, path); err != nil {
		return err
	}
	db.lastSnapSeq = seq
	return nil
}

// CompactJournal rotates the attached journal, dropping every entry the
// most recent snapshot already includes. Call it right after a snapshot
// save, under the same exclusion of mutations (roadd does both inside one
// coordinator write lock); without a snapshot it is a no-op, since every
// journal entry is still needed for recovery. The journal file shrinks to
// its header plus any entries appended since the snapshot.
func (db *DB) CompactJournal() error {
	if db.journal == nil || db.lastSnapSeq == 0 {
		return nil
	}
	return db.journal.Rotate(db.f, db.lastSnapSeq)
}

func (db *DB) snapshotSeq() uint64 {
	if db.journal != nil {
		return db.journal.LastSeq()
	}
	return db.baseSeq
}

// OpenSnapshot reopens a previously saved DB without rebuilding the
// index: O(load) instead of O(build). The snapshot's maintenance epoch
// and journal watermark are restored, so caching layers and journal
// replay continue seamlessly.
func OpenSnapshot(r io.Reader) (*DB, error) {
	f, lastSeq, err := snapshot.Load(r)
	if err != nil {
		return nil, err
	}
	return &DB{f: f, baseSeq: lastSeq, lastSnapSeq: lastSeq}, nil
}

// OpenSnapshotFile reopens a DB from a snapshot file.
func OpenSnapshotFile(path string) (*DB, error) {
	f, lastSeq, err := snapshot.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &DB{f: f, baseSeq: lastSeq, lastSnapSeq: lastSeq}, nil
}

// ReplayJournal applies every journal entry the DB's state does not
// already include (sequence numbers beyond the loaded snapshot's
// watermark — or beyond 0 for a freshly built DB, which replays
// everything). It returns the number of ops applied. A returned
// *snapshot.OpError is expected — an op that failed when first executed
// fails identically on replay, and the replay completed; any other
// non-nil error is fatal (the journal could not be fully read) and the
// DB must not be treated as recovered: its watermark is left where it
// was so the problem cannot be papered over by a later snapshot.
func (db *DB) ReplayJournal(j *Journal) (int, error) {
	applied, err := j.Replay(db.f, db.baseSeq)
	var opErr *snapshot.OpError
	if (err == nil || errors.As(err, &opErr)) && j.LastSeq() > db.baseSeq {
		// Never regress the watermark: a rotated (shorter) journal does not
		// mean the state includes less than the snapshot it came from.
		db.baseSeq = j.LastSeq()
	}
	return applied, err
}

// IsReplayOpError reports whether a ReplayJournal error is an expected
// per-op failure (replay completed; the op had failed live too) rather
// than a fatal journal read/corruption error.
func IsReplayOpError(err error) bool {
	var opErr *snapshot.OpError
	return errors.As(err, &opErr)
}

// AttachJournal directs every subsequent maintenance op through j before
// it is applied (write-ahead logging). Typically called after
// ReplayJournal so the journal is consistent with the DB state. The
// journal's sequence counter is fast-forwarded to the DB's watermark, so
// a fresh (or rotated) journal attached to a snapshot-loaded DB numbers
// new ops after the snapshot's last sequence — a later replay-after-
// watermark must not skip them — and a fresh journal is stamped with the
// base state's fingerprint so replaying it against a different build is
// caught. A nil journal detaches.
func (db *DB) AttachJournal(j *Journal) error {
	db.journal = j
	if j == nil {
		return nil
	}
	j.EnsureSeq(db.baseSeq)
	if j.LastSeq() > db.baseSeq {
		db.baseSeq = j.LastSeq()
	}
	return j.BindBase(db.f, db.baseSeq)
}

// JournalSeq returns the last journal sequence number incorporated in the
// DB's state (0 when no journal has ever been involved).
func (db *DB) JournalSeq() uint64 { return db.snapshotSeq() }

// JournalSizeBytes returns the attached journal's file size (0 with no
// journal) — the quantity roadd's -journal-max-bytes auto-snapshot
// trigger watches.
func (db *DB) JournalSizeBytes() int64 {
	if db.journal == nil {
		return 0
	}
	return db.journal.Size()
}

// Session is an independent read-only query context; any number of
// Sessions may query concurrently (I/O simulation is skipped in sessions).
// Sessions must not overlap with maintenance calls on the same DB: the
// library itself does no locking between queries and updates. The
// internal/server subsystem (command roadd) wraps both in an
// epoch-guarded reader/writer coordination layer that enforces this —
// embed it, or apply the same discipline, when serving concurrent
// traffic.
type Session struct {
	s  *core.Session
	db *DB
}

// NewSession returns a concurrent query context.
func (db *DB) NewSession() *Session { return &Session{s: db.f.NewSession(), db: db} }

// Epoch returns the DB's maintenance epoch as seen by this session.
func (s *Session) Epoch() uint64 { return s.s.Epoch() }
