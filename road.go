// Package road is a Go implementation of ROAD — the Route-Overlay /
// Association-Directory framework for fast object search on road networks
// (Lee, Lee, Zheng; EDBT 2009).
//
// ROAD evaluates location-dependent spatial queries — k-nearest-neighbour
// and range search over points of interest — on large road networks. The
// network is recursively partitioned into regional sub-networks (Rnets)
// augmented with shortcuts (precomputed shortest paths between region
// border nodes) and object abstracts (summaries of the objects inside each
// region). A search expands from the query point like Dijkstra, but hops
// over entire object-free regions via shortcuts instead of crawling them
// edge by edge.
//
// Quick start:
//
//	b := road.NewNetworkBuilder()
//	a := b.AddNode(0, 0)
//	c := b.AddNode(1, 0)
//	e, _ := b.AddRoad(a, c, 1.5)
//	db, _ := road.Open(b, road.Options{})
//	db.AddObject(e, 0.5, 0)              // a POI mid-road
//	hits, _ := db.KNN(a, 1, road.AnyAttr)
//
// The db separates the network from the objects: road closures, distance
// (or travel-time) changes and object churn are all incremental.
package road

import (
	"fmt"

	"road/internal/core"
	"road/internal/geom"
	"road/internal/graph"
	"road/internal/rnet"
)

// Re-exported identifier types.
type (
	// NodeID identifies a road intersection.
	NodeID = graph.NodeID
	// EdgeID identifies a road segment.
	EdgeID = graph.EdgeID
	// ObjectID identifies a spatial object (point of interest).
	ObjectID = graph.ObjectID
	// Object is a spatial object placed on a road segment.
	Object = graph.Object
	// Result is one query answer: an object and its network distance.
	Result = core.Result
	// Stats reports per-query traversal and I/O cost.
	Stats = core.QueryStats
	// AbstractKind selects the object-abstract representation.
	AbstractKind = core.AbstractKind
)

// Abstract representation choices (see core package for trade-offs).
const (
	AbstractSet   = core.AbstractSet
	AbstractCount = core.AbstractCount
	AbstractBloom = core.AbstractBloom
)

// AnyAttr matches objects of every attribute category.
const AnyAttr int32 = 0

// NetworkBuilder accumulates a road network prior to Open.
type NetworkBuilder struct {
	g *graph.Graph
}

// NewNetworkBuilder returns an empty builder.
func NewNetworkBuilder() *NetworkBuilder {
	return &NetworkBuilder{g: graph.New(0, 0)}
}

// FromGraph wraps an existing graph (e.g. from the dataset generators)
// in a builder.
func FromGraph(g *graph.Graph) *NetworkBuilder {
	return &NetworkBuilder{g: g}
}

// AddNode adds an intersection at map position (x, y) and returns its ID.
func (b *NetworkBuilder) AddNode(x, y float64) NodeID {
	return b.g.AddNode(geom.Point{X: x, Y: y})
}

// AddRoad adds a bidirectional road segment of the given positive distance
// (travel distance, trip time, or toll — any positive metric).
func (b *NetworkBuilder) AddRoad(u, v NodeID, dist float64) (EdgeID, error) {
	return b.g.AddEdge(u, v, dist)
}

// NumNodes returns the number of intersections added so far.
func (b *NetworkBuilder) NumNodes() int { return b.g.NumNodes() }

// NumRoads returns the number of segments added so far.
func (b *NetworkBuilder) NumRoads() int { return b.g.NumEdges() }

// Options tunes DB construction. The zero value picks sensible defaults
// (fanout 4 and a depth suited to the network size, per the paper).
type Options struct {
	// Fanout is the partitioning factor p (power of two ≥ 2; default 4).
	Fanout int
	// Levels is the Rnet hierarchy depth l (default 4, or 8 for networks
	// of 50k+ nodes).
	Levels int
	// Abstract selects the object-abstract representation
	// (default AbstractSet).
	Abstract AbstractKind
	// StorePaths retains shortcut waypoints so result paths can be
	// reconstructed (costs memory).
	StorePaths bool
	// DisableIOSim turns off the simulated page store (slightly faster,
	// no Stats.IO reporting).
	DisableIOSim bool
	// Seed makes partitioning deterministic across runs (default 0).
	Seed int64
}

// DB is an opened ROAD database: one road network with its Rnet hierarchy,
// Route Overlay, and a primary object directory.
type DB struct {
	f *core.Framework
}

// Open builds the ROAD index over the builder's network. The builder's
// network is adopted by the DB; further mutation must go through DB
// methods.
func Open(b *NetworkBuilder, opts Options) (*DB, error) {
	if b.g.NumNodes() < 2 {
		return nil, fmt.Errorf("road: network needs at least 2 nodes, has %d", b.g.NumNodes())
	}
	rcfg := rnet.DefaultConfig(b.g.NumNodes())
	if opts.Fanout != 0 {
		rcfg.Fanout = opts.Fanout
	}
	if opts.Levels != 0 {
		rcfg.Levels = opts.Levels
	}
	rcfg.StorePaths = opts.StorePaths
	rcfg.Seed = opts.Seed
	cfg := core.Config{Rnet: rcfg, Abstract: opts.Abstract}
	if opts.DisableIOSim {
		cfg.BufferPages = -1
	}
	objects := graph.NewObjectSet(b.g)
	f, err := core.Build(b.g, objects, cfg)
	if err != nil {
		return nil, err
	}
	return &DB{f: f}, nil
}

// OpenWithObjects builds the ROAD index with a pre-populated object set
// (which must be bound to the builder's graph).
func OpenWithObjects(b *NetworkBuilder, objects *graph.ObjectSet, opts Options) (*DB, error) {
	if objects.Graph() != b.g {
		return nil, fmt.Errorf("road: object set bound to a different network")
	}
	db, err := Open(b, opts)
	if err != nil {
		return nil, err
	}
	// Rebuild with the provided set: Open built an empty directory; attach
	// the real one as primary.
	db.f = replaceObjects(db.f, objects, opts)
	return db, nil
}

func replaceObjects(f *core.Framework, objects *graph.ObjectSet, opts Options) *core.Framework {
	// The hierarchy and overlay are object-independent; only the directory
	// is rebuilt — this is exactly the separation ROAD advertises.
	return core.Rebind(f, objects, opts.Abstract)
}

// Framework exposes the underlying core framework for advanced use
// (benchmark harnesses, ablations).
func (db *DB) Framework() *core.Framework { return db.f }

// AddObject places an object on road e at distance offset from the road's
// U endpoint, with an attribute category (use 0 for "untyped").
func (db *DB) AddObject(e EdgeID, offset float64, attr int32) (Object, error) {
	return db.f.InsertObject(e, offset, attr)
}

// RemoveObject deletes an object.
func (db *DB) RemoveObject(id ObjectID) error { return db.f.DeleteObject(id) }

// SetObjectAttr changes an object's attribute category.
func (db *DB) SetObjectAttr(id ObjectID, attr int32) error {
	return db.f.UpdateObjectAttr(id, attr)
}

// KNN returns the k objects with attribute attr (AnyAttr for all) nearest
// to the given intersection, closest first.
func (db *DB) KNN(from NodeID, k int, attr int32) ([]Result, Stats) {
	return db.f.KNN(core.Query{Node: from, Attr: attr}, k)
}

// Within returns all matching objects within network distance radius of
// the given intersection, closest first.
func (db *DB) Within(from NodeID, radius float64, attr int32) ([]Result, Stats) {
	return db.f.Range(core.Query{Node: from, Attr: attr}, radius)
}

// SetRoadDistance changes a road's distance metric (e.g. travel time under
// new traffic conditions); the index repairs itself incrementally.
func (db *DB) SetRoadDistance(e EdgeID, dist float64) error {
	_, err := db.f.SetEdgeWeight(e, dist)
	return err
}

// AddRoad inserts a new road segment between existing intersections.
func (db *DB) AddRoad(u, v NodeID, dist float64) (EdgeID, error) {
	e, _, err := db.f.AddEdge(u, v, dist)
	return e, err
}

// CloseRoad removes a road segment (objects on it are dropped).
func (db *DB) CloseRoad(e EdgeID) error {
	_, err := db.f.DeleteEdge(e)
	return err
}

// ReopenRoad restores a previously closed road segment.
func (db *DB) ReopenRoad(e EdgeID) error {
	_, err := db.f.RestoreEdge(e)
	return err
}

// IndexSizeBytes estimates total index storage.
func (db *DB) IndexSizeBytes() int64 { return db.f.IndexSizeBytes() }

// Epoch returns the database's maintenance epoch: a counter incremented by
// every successful mutating call (AddObject, SetRoadDistance, CloseRoad,
// ...). Cached query answers are valid exactly as long as the epoch they
// were computed under is still current; roadd's result cache is built on
// this. The counter is safe to read concurrently.
func (db *DB) Epoch() uint64 { return db.f.Epoch() }

// PathTo returns the detailed shortest route (as a node sequence) from an
// intersection to an object, plus its network distance. Requires the DB to
// have been opened with Options.StorePaths; shortcut hops taken during the
// search are expanded recursively into physical intersections.
func (db *DB) PathTo(from NodeID, obj ObjectID) ([]NodeID, float64, error) {
	return db.f.PathTo(core.Query{Node: from}, obj)
}

// Session is an independent read-only query context; any number of
// Sessions may query concurrently (I/O simulation is skipped in sessions).
// Sessions must not overlap with maintenance calls on the same DB: the
// library itself does no locking between queries and updates. The
// internal/server subsystem (command roadd) wraps both in an
// epoch-guarded reader/writer coordination layer that enforces this —
// embed it, or apply the same discipline, when serving concurrent
// traffic.
type Session struct {
	s *core.Session
}

// NewSession returns a concurrent query context.
func (db *DB) NewSession() *Session { return &Session{s: db.f.NewSession()} }

// KNN is the session variant of DB.KNN.
func (s *Session) KNN(from NodeID, k int, attr int32) ([]Result, Stats) {
	return s.s.KNN(core.Query{Node: from, Attr: attr}, k)
}

// Within is the session variant of DB.Within.
func (s *Session) Within(from NodeID, radius float64, attr int32) ([]Result, Stats) {
	return s.s.Range(core.Query{Node: from, Attr: attr}, radius)
}

// PathTo is the session variant of DB.PathTo; unlike the DB variant it is
// safe to call from many sessions concurrently.
func (s *Session) PathTo(from NodeID, obj ObjectID) ([]NodeID, float64, error) {
	return s.s.PathTo(core.Query{Node: from}, obj)
}

// Epoch returns the DB's maintenance epoch as seen by this session.
func (s *Session) Epoch() uint64 { return s.s.Epoch() }
