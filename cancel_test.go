package road

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"road/internal/dataset"
)

// The cancellation acceptance suite: a Within with a huge radius on the
// CA network must abort promptly mid-search under both DB and ShardedDB,
// returning ErrCanceled with Stats marking the partial result. Run under
// -race in CI (the ctx poll sits on the hot search path).

// caStores lazily builds one CA-quarter DB and ShardedDB pair shared by
// the cancellation tests (building twice per test would dominate -race
// runs). Tests must not mutate them.
var caStores struct {
	once sync.Once
	db   *DB
	sdb  *ShardedDB
}

func caPair(t *testing.T) (*DB, *ShardedDB) {
	t.Helper()
	caStores.once.Do(func() {
		g := dataset.MustGenerate(dataset.Scaled(dataset.CA(), 0.25))
		set := dataset.PlaceUniform(g, 500, 1, 0, 1, 2, 3)
		g2 := g.Clone()
		set2 := set.Clone(g2)
		db, err := OpenWithObjects(FromGraph(g), set, Options{Seed: 1})
		if err != nil {
			t.Fatalf("Open CA: %v", err)
		}
		sdb, err := OpenShardedWithObjects(FromGraph(g2), set2, Options{Seed: 1}, 4)
		if err != nil {
			t.Fatalf("OpenSharded CA: %v", err)
		}
		caStores.db, caStores.sdb = db, sdb
	})
	if caStores.db == nil {
		t.Fatal("CA store construction failed earlier")
	}
	return caStores.db, caStores.sdb
}

// countdownCtx is a context whose Err() flips to Canceled after a fixed
// number of polls — a deterministic way to cancel a search mid-flight,
// independent of machine speed. The search loop polls every 64 settled
// nodes, so cancellation after N polls must abort within ~64·(N+1)
// settled nodes: the pop-bounded promptness the <10ms acceptance rests
// on (64 pops is microseconds of work).
type countdownCtx struct {
	mu    sync.Mutex
	calls int
	after int
	done  chan struct{}
}

func newCountdownCtx(after int) *countdownCtx {
	return &countdownCtx{after: after, done: make(chan struct{})}
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return c.done }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// hugeRadius comfortably covers the whole CA-quarter network.
const hugeRadius = 1e6

func assertCanceledWithin(t *testing.T, label string, res []Result, stats Stats, err error, maxPops int) {
	t.Helper()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("%s: err = %v, want ErrCanceled", label, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("%s: err %v does not wrap context.Canceled", label, err)
	}
	if !stats.Truncated {
		t.Fatalf("%s: Stats.Truncated not set on canceled search", label)
	}
	if stats.NodesPopped > maxPops {
		t.Fatalf("%s: settled %d nodes after cancellation, want ≤ %d (not prompt)", label, stats.NodesPopped, maxPops)
	}
	// The prefix must be sorted ascending — a valid partial answer.
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatalf("%s: partial result not sorted at %d", label, i)
		}
	}
}

func TestCancelWithinMidSearchDB(t *testing.T) {
	db, _ := caPair(t)
	// Sanity: the uncanceled search settles (almost) the whole network,
	// so the canceled run below provably stops mid-search.
	full, fullStats, err := db.WithinContext(context.Background(), NewWithin(0, hugeRadius))
	if err != nil {
		t.Fatal(err)
	}
	if fullStats.NodesPopped < 1000 || len(full) == 0 {
		t.Fatalf("CA search too small to exercise cancellation: %d pops", fullStats.NodesPopped)
	}

	const polls = 3
	ctx := newCountdownCtx(polls)
	res, stats, err := db.WithinContext(ctx, NewWithin(0, hugeRadius))
	assertCanceledWithin(t, "db within", res, stats, err, 64*(polls+1))
	if stats.NodesPopped >= fullStats.NodesPopped {
		t.Fatalf("canceled search settled the full network (%d pops)", stats.NodesPopped)
	}
}

func TestCancelWithinMidSearchSharded(t *testing.T) {
	_, sdb := caPair(t)
	full, fullStats, err := sdb.WithinContext(context.Background(), NewWithin(0, hugeRadius))
	if err != nil {
		t.Fatal(err)
	}
	if fullStats.NodesPopped < 1000 || len(full) == 0 {
		t.Fatalf("CA sharded search too small: %d pops", fullStats.NodesPopped)
	}

	const polls = 3
	ctx := newCountdownCtx(polls)
	res, stats, err := sdb.WithinContext(ctx, NewWithin(0, hugeRadius))
	assertCanceledWithin(t, "sharded within", res, stats, err, 64*(polls+1))
	if stats.NodesPopped >= fullStats.NodesPopped {
		t.Fatalf("canceled sharded search settled everything (%d pops)", stats.NodesPopped)
	}
}

// TestCancelPromptWallClock is the wall-clock face of promptness: a
// pre-canceled context must come back ErrCanceled far inside the 10ms
// acceptance bound instead of running the full CA expansion.
func TestCancelPromptWallClock(t *testing.T) {
	db, sdb := caPair(t)
	for _, tc := range []struct {
		name  string
		store Store
	}{{"db", db}, {"sharded", sdb}} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		start := time.Now()
		_, stats, err := tc.store.WithinContext(ctx, NewWithin(0, hugeRadius))
		elapsed := time.Since(start)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%s: err = %v, want ErrCanceled", tc.name, err)
		}
		if !stats.Truncated {
			t.Fatalf("%s: Truncated not set", tc.name)
		}
		// 500ms is orders of magnitude above the cooperative check
		// interval; generous to keep CI machines honest but unflaky.
		if elapsed > 500*time.Millisecond {
			t.Fatalf("%s: canceled search took %v", tc.name, elapsed)
		}
	}
}

// TestDeadlineExceededWrapsBoth: a deadline-canceled query reports both
// ErrCanceled and context.DeadlineExceeded identities.
func TestDeadlineExceededWrapsBoth(t *testing.T) {
	db, _ := caPair(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // deadline definitely past
	_, _, err := db.WithinContext(ctx, NewWithin(0, hugeRadius))
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

// TestCancelPathTo: path queries honour the context too, on both shapes.
func TestCancelPathTo(t *testing.T) {
	_, sdb := caPair(t)
	// Find any reachable object for a valid target.
	hits, _, err := sdb.KNNContext(context.Background(), NewKNN(0, 1))
	if err != nil || len(hits) == 0 {
		t.Fatalf("no object to route to: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = sdb.PathToContext(ctx, NewPath(0, hits[0].Object.ID))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("sharded path err = %v, want ErrCanceled", err)
	}
}

// TestBudgetExhausted: the traversal budget truncates with the typed
// error and a pop count honouring the bound (one check interval slack).
func TestBudgetExhausted(t *testing.T) {
	db, sdb := caPair(t)
	for _, tc := range []struct {
		name  string
		store Store
	}{{"db", db}, {"sharded", sdb}} {
		const budget = 100
		res, stats, err := tc.store.WithinContext(context.Background(),
			NewWithin(0, hugeRadius, WithBudget(budget)))
		if !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("%s: err = %v, want ErrBudgetExhausted", tc.name, err)
		}
		if !stats.Truncated {
			t.Fatalf("%s: Truncated not set", tc.name)
		}
		if stats.NodesPopped > budget+64 {
			t.Fatalf("%s: settled %d nodes on a %d budget", tc.name, stats.NodesPopped, budget)
		}
		for i := 1; i < len(res); i++ {
			if res[i].Dist < res[i-1].Dist {
				t.Fatalf("%s: truncated result unsorted", tc.name)
			}
		}
	}
}
