package road

import (
	"bytes"
	"path/filepath"
	"testing"
)

// TestSnapshotStreamRoundTrip exercises the io.Writer/io.Reader snapshot
// facade: save a mutated DB to a buffer, reopen it, and require identical
// answers and epoch.
func TestSnapshotStreamRoundTrip(t *testing.T) {
	b, nodes, edges := buildChain(t)
	db, err := Open(b, Options{Fanout: 2, Levels: 2, StorePaths: true})
	if err != nil {
		t.Fatal(err)
	}
	o, err := db.AddObject(edges[3], 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetRoadDistance(edges[1], 2.5); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseRoad(edges[4]); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := db.SaveSnapshot(&buf); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	db2, err := OpenSnapshot(&buf)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	if db.Epoch() != db2.Epoch() {
		t.Fatalf("epoch diverged: %d vs %d", db.Epoch(), db2.Epoch())
	}
	for _, n := range nodes {
		want, _ := testKNN(db, n, 2, AnyAttr)
		got, _ := testKNN(db2, n, 2, AnyAttr)
		if len(want) != len(got) {
			t.Fatalf("KNN(%d) length diverged", n)
		}
		for i := range want {
			if want[i].Object != got[i].Object || want[i].Dist != got[i].Dist {
				t.Fatalf("KNN(%d)[%d] = %+v vs %+v", n, i, want[i], got[i])
			}
		}
	}
	wantPath, wantDist, err := testPathTo(db, nodes[0], o.ID)
	if err != nil {
		t.Fatal(err)
	}
	gotPath, gotDist, err := testPathTo(db2, nodes[0], o.ID)
	if err != nil {
		t.Fatalf("PathTo after reopen: %v", err)
	}
	if wantDist != gotDist || len(wantPath) != len(gotPath) {
		t.Fatalf("path diverged: (%v, %g) vs (%v, %g)", wantPath, wantDist, gotPath, gotDist)
	}

	// The reopened DB remains fully maintainable.
	if err := db2.ReopenRoad(edges[4]); err != nil {
		t.Fatalf("ReopenRoad after reopen: %v", err)
	}
}

// TestJournalRotationKeepsWatermark: attaching a FRESH journal to a
// snapshot-loaded DB must number new ops after the snapshot's watermark;
// otherwise a later replay-after-watermark silently skips them.
func TestJournalRotationKeepsWatermark(t *testing.T) {
	dir := t.TempDir()

	b, _, edges := buildChain(t)
	db, err := Open(b, Options{Fanout: 2, Levels: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := OpenJournal(filepath.Join(dir, "old.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachJournal(j1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := db.SetRoadDistance(edges[i], float64(i)+2); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := db.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	snapBytes := snap.Bytes()
	j1.Close()

	// Restart with the journal rotated away: fresh file, empty.
	db2, err := OpenSnapshot(bytes.NewReader(snapBytes))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(filepath.Join(dir, "new.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if _, err := db2.ReplayJournal(j2); err != nil {
		t.Fatal(err)
	}
	if err := db2.AttachJournal(j2); err != nil {
		t.Fatal(err)
	}
	if err := db2.SetRoadDistance(edges[3], 7); err != nil {
		t.Fatal(err)
	}
	if got := j2.LastSeq(); got != 4 {
		t.Fatalf("rotated journal seq = %d, want 4 (continue after snapshot watermark 3)", got)
	}

	// Crash-restart from the same snapshot + rotated journal: the new op
	// must replay, not be skipped as pre-watermark.
	db3, err := OpenSnapshot(bytes.NewReader(snapBytes))
	if err != nil {
		t.Fatal(err)
	}
	applied, err := db3.ReplayJournal(j2)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Fatalf("replayed %d ops from rotated journal, want 1", applied)
	}
	if db3.Epoch() != db2.Epoch() {
		t.Fatalf("epoch diverged: %d vs %d", db3.Epoch(), db2.Epoch())
	}
}

// TestJournalWriteAhead: ops are in the journal even when their
// application fails, and a fresh build + full replay reconverges.
func TestJournalWriteAhead(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "chain.wal")

	build := func() *DB {
		b, _, _ := buildChain(t)
		db, err := Open(b, Options{Fanout: 2, Levels: 2, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}

	db := build()
	j, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachJournal(j); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddObject(1, 0.5, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseRoad(2); err != nil {
		t.Fatal(err)
	}
	if err := db.CloseRoad(2); err == nil { // fails: already closed
		t.Fatal("double close succeeded")
	}
	if err := db.SetRoadDistance(0, 4); err != nil {
		t.Fatal(err)
	}
	if j.LastSeq() != 4 {
		t.Fatalf("journal seq = %d, want 4 (failed op journaled too)", j.LastSeq())
	}
	j.Close()

	// Cold start with no snapshot: same base build + full journal replay.
	db2 := build()
	j2, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if _, err := db2.ReplayJournal(j2); err == nil {
		t.Fatal("replay should surface the failed op")
	}
	if db.Epoch() != db2.Epoch() {
		t.Fatalf("epoch diverged: %d vs %d", db.Epoch(), db2.Epoch())
	}
	want, _ := testKNN(db, 0, 1, AnyAttr)
	got, _ := testKNN(db2, 0, 1, AnyAttr)
	if len(want) != 1 || len(got) != 1 || want[0].Object != got[0].Object || want[0].Dist != got[0].Dist {
		t.Fatalf("answers diverged: %+v vs %+v", want, got)
	}
}
