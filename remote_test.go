package road

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"road/internal/shard"
	"road/internal/shard/remote"
)

// testHost runs a roadshard-equivalent host in-process: a remote.Host
// behind a real TCP listener, so the fleet client exercises the same
// HTTP transport, pooling and retry paths a multi-process deployment
// does — just without fork/exec (that angle is covered by
// roadbench -remote and the CI smoke).
type testHost struct {
	t         *testing.T
	ids       []int
	snap, wal string
	addr      string
	host      *remote.Host
	srv       *http.Server
}

func startTestHost(t *testing.T, addr string, ids []int, snap, wal string) *testHost {
	t.Helper()
	host, err := remote.OpenHost(ids, remote.HostConfig{
		SnapshotPrefix: snap,
		JournalPrefix:  wal,
	})
	if err != nil {
		t.Fatalf("OpenHost %v: %v", ids, err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		host.Close()
		t.Fatalf("listen %s: %v", addr, err)
	}
	srv := &http.Server{Handler: host.Handler()}
	go srv.Serve(ln)
	return &testHost{t: t, ids: ids, snap: snap, wal: wal,
		addr: ln.Addr().String(), host: host, srv: srv}
}

// crash simulates a SIGKILL: in-flight connections drop and the journal
// file handles close with no final snapshot. Recovery must come from
// snapshot + journal replay alone.
func (h *testHost) crash() {
	h.srv.Close()
	h.host.Close()
}

// restart boots a fresh host off the same files at the same address,
// like a supervisor restarting the crashed process.
func (h *testHost) restart() *testHost {
	return startTestHost(h.t, h.addr, h.ids, h.snap, h.wal)
}

// remoteTriple builds a monolithic reference index and a RemoteDB over
// two hosts booted from the snapshot files of an identically-built
// sharded deployment, split half the shards each.
func remoteTriple(t *testing.T, seed int64, nodes, objects, shards int) (*DB, *RemoteDB, []*testHost) {
	t.Helper()
	db, sdb := shardedPair(t, seed, nodes, objects, shards)
	dir := t.TempDir()
	snap := filepath.Join(dir, "fleet")
	wal := filepath.Join(dir, "wal")
	if err := sdb.SaveSnapshotFiles(snap); err != nil {
		t.Fatalf("SaveSnapshotFiles: %v", err)
	}
	var idsA, idsB []int
	for i := 0; i < shards; i++ {
		if i < shards/2 {
			idsA = append(idsA, i)
		} else {
			idsB = append(idsB, i)
		}
	}
	hostA := startTestHost(t, "127.0.0.1:0", idsA, snap, wal)
	hostB := startTestHost(t, "127.0.0.1:0", idsB, snap, wal)
	hosts := []*testHost{hostA, hostB}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rdb, err := OpenRemote(ctx, []string{hostA.addr, hostB.addr}, RemoteOptions{
		HealthInterval: 25 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatalf("OpenRemote: %v", err)
	}
	t.Cleanup(func() {
		rdb.Close()
		for _, h := range hosts {
			h.crash()
		}
	})
	return db, rdb, hosts
}

// TestRemoteFleetEquivalence is the randomized acceptance storm for the
// out-of-process deployment: the RemoteDB must answer every query and
// accept every mutation exactly like the monolithic reference, across
// the full wire round trip (JSON encoding, ±Inf translation, typed
// errors, derived-update mirroring).
func TestRemoteFleetEquivalence(t *testing.T) {
	ctx := context.Background()
	const numObjects = 50
	db, rdb, _ := remoteTriple(t, 5, 300, numObjects, 4)
	var mono, other Store = db, rdb
	rng := rand.New(rand.NewSource(5))

	// Borders first (cross-shard fan-out by construction), then a random
	// interior sample.
	var qnodes []NodeID
	for i := 0; i < rdb.NumShards(); i++ {
		qnodes = append(qnodes, rdb.Router().Shard(shard.ID(i)).Borders()...)
		if len(qnodes) > 24 {
			break
		}
	}
	for i := 0; i < 20; i++ {
		qnodes = append(qnodes, NodeID(rng.Intn(other.NumNodes())))
	}

	check := func(phase string) {
		for _, n := range qnodes {
			for _, k := range []int{1, 4} {
				want, _, errA := mono.KNNContext(ctx, NewKNN(n, k))
				got, _, errB := other.KNNContext(ctx, NewKNN(n, k))
				if errA != nil || errB != nil {
					t.Fatalf("%s knn(%d,%d): %v / %v", phase, n, k, errA, errB)
				}
				assertSameResults(t, phase+" knn", want, got)
			}
			want, _, errA := mono.WithinContext(ctx, NewWithin(n, 3.5))
			got, _, errB := other.WithinContext(ctx, NewWithin(n, 3.5))
			if errA != nil || errB != nil {
				t.Fatalf("%s within(%d): %v / %v", phase, n, errA, errB)
			}
			assertSameResults(t, phase+" within", want, got)
		}
		// PathTo: distances must agree; routes may differ between equal
		// shortest paths, and error identity must survive the wire.
		for i := 0; i < 25; i++ {
			n := qnodes[rng.Intn(len(qnodes))]
			obj := ObjectID(rng.Intn(numObjects))
			wantP, _, wantErr := mono.PathToContext(ctx, NewPath(n, obj))
			gotP, _, gotErr := other.PathToContext(ctx, NewPath(n, obj))
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s path(%d,%d): err %v vs %v", phase, n, obj, wantErr, gotErr)
			}
			if wantErr != nil {
				if !errors.Is(gotErr, ErrNoSuchObject) && !errors.Is(gotErr, ErrUnreachable) {
					t.Fatalf("%s path(%d,%d): untyped remote error %v", phase, n, obj, gotErr)
				}
				continue
			}
			if math.Abs(wantP.Dist-gotP.Dist) > 1e-9*math.Max(1, wantP.Dist) {
				t.Fatalf("%s path(%d,%d): dist %g, want %g", phase, n, obj, gotP.Dist, wantP.Dist)
			}
			if len(gotP.Nodes) == 0 || gotP.Nodes[0] != n {
				t.Fatalf("%s path(%d,%d): bad route %v", phase, n, obj, gotP.Nodes)
			}
		}
		// Batched equivalence through Store.Query.
		reqs := make([]Request, 0, len(qnodes))
		for _, n := range qnodes {
			k := NewKNN(n, 4)
			reqs = append(reqs, Request{KNN: &k})
		}
		ansA := mono.Query(ctx, reqs)
		ansB := other.Query(ctx, reqs)
		for i := range reqs {
			if ansA[i].Err != nil || ansB[i].Err != nil {
				t.Fatalf("%s batch entry %d: %v / %v", phase, i, ansA[i].Err, ansB[i].Err)
			}
			assertSameResults(t, phase+" batch", ansA[i].Results, ansB[i].Results)
		}
	}
	check("initial")

	// Concurrent sessions querying while the maintenance surface applies
	// re-weights (the -race payoff). The mutations touch distinct edges
	// with fixed weights, so replaying the same set serially on the mono
	// reference commutes to the same final state.
	edges := make([]EdgeID, 0, 16)
	weights := make([]float64, 0, 16)
	seen := map[EdgeID]bool{}
	for len(edges) < 16 {
		e := EdgeID(rng.Intn(other.NumRoads()))
		if seen[e] {
			continue
		}
		seen[e] = true
		edges = append(edges, e)
		weights = append(weights, 0.3+2*rng.Float64())
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := rdb.NewSession()
			r := rand.New(rand.NewSource(int64(w) * 101))
			for i := 0; i < 25; i++ {
				n := qnodes[r.Intn(len(qnodes))]
				if _, _, err := sess.KNNContext(ctx, NewKNN(n, 3)); err != nil {
					t.Errorf("concurrent knn(%d): %v", n, err)
					return
				}
			}
		}(w)
	}
	for i, e := range edges {
		if err := rdb.SetRoadDistance(e, weights[i]); err != nil {
			t.Fatalf("concurrent set-distance(%d): %v", e, err)
		}
	}
	wg.Wait()
	for i, e := range edges {
		if err := mono.SetRoadDistance(e, weights[i]); err != nil {
			t.Fatalf("mono set-distance(%d): %v", e, err)
		}
	}
	check("after concurrent phase")

	// The full maintenance stream on both sides of the interface.
	mutate := func(label string, op func(s Store) error) {
		errA := op(mono)
		errB := op(other)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s divergence: %v vs %v", label, errA, errB)
		}
	}
	for i := 0; i < 30; i++ {
		e := EdgeID(rng.Intn(other.NumRoads()))
		switch rng.Intn(5) {
		case 0:
			w := 0.2 + 3*rng.Float64()
			mutate("set-distance", func(s Store) error { return s.SetRoadDistance(e, w) })
		case 1:
			mutate("close", func(s Store) error { return s.CloseRoad(e) })
		case 2:
			mutate("reopen", func(s Store) error { return s.ReopenRoad(e) })
		case 3:
			off := rng.Float64() * 0.1
			var ids []ObjectID
			mutate("insert", func(s Store) error {
				o, err := s.AddObject(e, off, 1)
				if err == nil {
					ids = append(ids, o.ID)
				}
				return err
			})
			if len(ids) == 2 && ids[0] != ids[1] {
				t.Fatalf("insert assigned object %d vs %d", ids[0], ids[1])
			}
		case 4:
			id := ObjectID(rng.Intn(numObjects))
			mutate("delete", func(s Store) error { return s.RemoveObject(id) })
		}
	}
	check("after maintenance")

	// The host-side journals saw every mutation the router acknowledged.
	if rdb.JournalSeq() == 0 {
		t.Fatal("host journals report seq 0 after a mutation storm")
	}
}

// interiorNode returns a node owned by exactly shard id — not shared
// with any other shard — so queries from it deterministically need that
// shard's host.
func interiorNode(t *testing.T, r *shard.Router, id int) NodeID {
	t.Helper()
	s := r.Shard(shard.ID(id))
	for _, gn := range s.GlobalNodes() {
		owned := true
		for j := 0; j < r.NumShards(); j++ {
			if j == id {
				continue
			}
			if _, ok := r.Shard(shard.ID(j)).LocalNode(gn); ok {
				owned = false
				break
			}
		}
		if owned {
			return gn
		}
	}
	t.Fatalf("shard %d has no interior node", id)
	return 0
}

// TestRemoteHostCrashRecovery kills one of two hosts mid-fleet and
// checks the failure and recovery contract: calls needing the dead
// host's shard fail fast with ErrShardUnavailable while the surviving
// shard keeps serving; a restarted host replays its journal and is
// re-adopted by the health loop without reconnecting the fleet; and the
// recovered fleet again matches the monolithic reference.
func TestRemoteHostCrashRecovery(t *testing.T) {
	ctx := context.Background()
	db, rdb, hosts := remoteTriple(t, 7, 240, 40, 2)
	var mono Store = db
	r := rdb.Router()

	aliveNode := interiorNode(t, r, 0) // hostA's shard
	deadNode := interiorNode(t, r, 1)  // hostB's shard
	deadEdge := r.Shard(1).GlobalEdges()[0]

	// Journaled mutations before the crash: the restarted host must
	// recover them from its write-ahead log (the crash skips the final
	// snapshot).
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		e := EdgeID(rng.Intn(rdb.NumRoads()))
		w := 0.3 + 2*rng.Float64()
		if err := rdb.SetRoadDistance(e, w); err != nil {
			t.Fatalf("pre-crash set-distance(%d): %v", e, err)
		}
		if err := mono.SetRoadDistance(e, w); err != nil {
			t.Fatalf("mono set-distance(%d): %v", e, err)
		}
	}
	oa, err := rdb.AddObject(EdgeID(deadEdge), 0.05, 2)
	if err != nil {
		t.Fatalf("pre-crash insert: %v", err)
	}
	ob, err := mono.AddObject(EdgeID(deadEdge), 0.05, 2)
	if err != nil || oa.ID != ob.ID {
		t.Fatalf("pre-crash insert diverged: %v vs %v (err %v)", oa.ID, ob.ID, err)
	}

	hostB := hosts[1]
	hostB.crash()

	// In-flight/new calls needing the dead shard fail with the typed
	// sentinel — both queries and mutations — not a generic error.
	if _, _, err := rdb.KNNContext(ctx, NewKNN(deadNode, 3)); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("query against dead host: got %v, want ErrShardUnavailable", err)
	}
	if err := rdb.SetRoadDistance(EdgeID(deadEdge), 1.5); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("mutation against dead host: got %v, want ErrShardUnavailable", err)
	}

	// The surviving shard keeps answering, and still matches mono.
	want, _, errA := mono.KNNContext(ctx, NewKNN(aliveNode, 3))
	got, _, errB := rdb.KNNContext(ctx, NewKNN(aliveNode, 3))
	if errA != nil || errB != nil {
		t.Fatalf("alive-shard query during outage: %v / %v", errA, errB)
	}
	assertSameResults(t, "degraded", want, got)

	// The health loop marks the host down (fail-fast instead of burning
	// timeouts on every call).
	var deadClient *remote.HostClient
	for _, c := range rdb.Fleet().Hosts() {
		if c.Addr() == hostB.addr {
			deadClient = c
		}
	}
	if deadClient == nil {
		t.Fatal("dead host not in fleet client list")
	}
	for deadline := time.Now().Add(5 * time.Second); !deadClient.Down(); {
		if time.Now().After(deadline) {
			t.Fatal("health checker never marked the crashed host down")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Restart at the same address: snapshot load + journal replay, then
	// the health loop re-adopts the shard without a fleet restart.
	restarted := hostB.restart()
	defer restarted.crash()
	wantDead, _, err := mono.KNNContext(ctx, NewKNN(deadNode, 3))
	if err != nil {
		t.Fatalf("mono reference query: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		got, _, err := rdb.KNNContext(ctx, NewKNN(deadNode, 3))
		if err == nil {
			assertSameResults(t, "recovered", wantDead, got)
			break
		}
		if !errors.Is(err, ErrShardUnavailable) {
			t.Fatalf("recovery query: unexpected error %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet never re-adopted the restarted host")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Post-recovery the re-adopted mirror accepts mutations and stays
	// consistent — including on the shard that died.
	if err := rdb.SetRoadDistance(EdgeID(deadEdge), 2.5); err != nil {
		t.Fatalf("post-recovery mutation: %v", err)
	}
	if err := mono.SetRoadDistance(EdgeID(deadEdge), 2.5); err != nil {
		t.Fatalf("mono post-recovery mutation: %v", err)
	}
	for _, n := range []NodeID{aliveNode, deadNode} {
		want, _, errA := mono.KNNContext(ctx, NewKNN(n, 4))
		got, _, errB := rdb.KNNContext(ctx, NewKNN(n, 4))
		if errA != nil || errB != nil {
			t.Fatalf("post-recovery knn(%d): %v / %v", n, errA, errB)
		}
		assertSameResults(t, "post-recovery", want, got)
	}
}

// TestRemoteSaveSnapshot checks the host-owned persistence path:
// Save triggers a snapshot + journal rotation on every host, and a host
// restarted from those files (no journal replay needed) serves the
// mutated state.
func TestRemoteSaveSnapshot(t *testing.T) {
	ctx := context.Background()
	db, rdb, hosts := remoteTriple(t, 13, 200, 30, 2)
	var mono Store = db

	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 8; i++ {
		e := EdgeID(rng.Intn(rdb.NumRoads()))
		w := 0.4 + rng.Float64()
		if err := rdb.SetRoadDistance(e, w); err != nil {
			t.Fatalf("set-distance: %v", err)
		}
		if err := mono.SetRoadDistance(e, w); err != nil {
			t.Fatalf("mono set-distance: %v", err)
		}
	}
	if err := rdb.Save(""); err != nil {
		t.Fatalf("Save: %v", err)
	}

	// Crash-restart a host AFTER the snapshot: state must come back from
	// the rotated files alone.
	hostB := hosts[1]
	hostB.crash()
	restarted := hostB.restart()
	defer restarted.crash()

	n := interiorNode(t, rdb.Router(), 1)
	want, _, err := mono.KNNContext(ctx, NewKNN(n, 4))
	if err != nil {
		t.Fatalf("mono query: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		got, _, err := rdb.KNNContext(ctx, NewKNN(n, 4))
		if err == nil {
			assertSameResults(t, "post-snapshot restart", want, got)
			return
		}
		if !errors.Is(err, ErrShardUnavailable) {
			t.Fatalf("post-snapshot query: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet never re-adopted the snapshot-restarted host")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
