package road

import (
	"context"
	"fmt"
	"math"
)

// This file defines the request side of the road.Store v1 API: typed,
// option-driven request structs shared by every Store implementation, the
// Request/Response pair of the batched Query entry point, and the
// functional options that build them. A request is plain data — it can be
// constructed literally, decoded from JSON (the struct tags are the wire
// format roadd's /batch endpoint speaks), or assembled with the NewKNN /
// NewWithin / NewPath constructors.

// KNNRequest asks for the K objects matching Attr nearest to From.
type KNNRequest struct {
	// From is the query intersection.
	From NodeID `json:"from"`
	// K is the number of neighbours wanted (≥ 1).
	K int `json:"k"`
	// Attr filters objects by attribute category (AnyAttr for all).
	Attr int32 `json:"attr,omitempty"`
	// MaxRadius, when > 0, additionally stops the expansion at that
	// network distance: fewer than K results may come back, but none
	// farther than MaxRadius.
	MaxRadius float64 `json:"max_radius,omitempty"`
	// Budget, when > 0, caps the total nodes settled before the search
	// gives up with ErrBudgetExhausted (the partial result is a valid
	// prefix; see Stats.Truncated).
	Budget int `json:"budget,omitempty"`
}

// WithinRequest asks for every object matching Attr within network
// distance Radius of From, closest first.
type WithinRequest struct {
	From   NodeID  `json:"from"`
	Radius float64 `json:"radius"`
	Attr   int32   `json:"attr,omitempty"`
	Budget int     `json:"budget,omitempty"`
}

// PathRequest asks for the detailed shortest route from From to Object.
type PathRequest struct {
	From   NodeID   `json:"from"`
	Object ObjectID `json:"object"`
	// Attr, when non-zero, requires the target object to match the
	// attribute category (ErrAttrMismatch otherwise).
	Attr   int32 `json:"attr,omitempty"`
	Budget int   `json:"budget,omitempty"`
}

// QueryOption tunes a request built by NewKNN, NewWithin or NewPath.
type QueryOption func(*queryOptions)

type queryOptions struct {
	attr      int32
	maxRadius float64
	budget    int
}

// WithAttr restricts the query to objects of one attribute category.
func WithAttr(attr int32) QueryOption {
	return func(o *queryOptions) { o.attr = attr }
}

// WithMaxRadius bounds a kNN expansion at a network distance (ignored by
// Within and Path requests, which carry their own bound).
func WithMaxRadius(radius float64) QueryOption {
	return func(o *queryOptions) { o.maxRadius = radius }
}

// WithBudget caps the nodes a query may settle before aborting with
// ErrBudgetExhausted.
func WithBudget(nodes int) QueryOption {
	return func(o *queryOptions) { o.budget = nodes }
}

func applyOptions(opts []QueryOption) queryOptions {
	var o queryOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// NewKNN builds a kNN request.
func NewKNN(from NodeID, k int, opts ...QueryOption) KNNRequest {
	o := applyOptions(opts)
	return KNNRequest{From: from, K: k, Attr: o.attr, MaxRadius: o.maxRadius, Budget: o.budget}
}

// NewWithin builds a range request.
func NewWithin(from NodeID, radius float64, opts ...QueryOption) WithinRequest {
	o := applyOptions(opts)
	return WithinRequest{From: from, Radius: radius, Attr: o.attr, Budget: o.budget}
}

// NewPath builds a detailed-route request.
func NewPath(from NodeID, obj ObjectID, opts ...QueryOption) PathRequest {
	o := applyOptions(opts)
	return PathRequest{From: from, Object: obj, Attr: o.attr, Budget: o.budget}
}

// Request is one entry of a Query batch: exactly one of the three kinds
// set. The zero Request is invalid and answers ErrInvalidRequest.
type Request struct {
	KNN    *KNNRequest    `json:"knn,omitempty"`
	Within *WithinRequest `json:"within,omitempty"`
	Path   *PathRequest   `json:"path,omitempty"`
}

// Response answers one Request. For kNN and range requests Results holds
// the hits; for path requests Path and Dist hold the route. Err is the
// per-request failure (typed; test with errors.Is) — a failed entry never
// fails its batch.
type Response struct {
	Results []Result `json:"results,omitempty"`
	Path    []NodeID `json:"path,omitempty"`
	Dist    float64  `json:"dist,omitempty"`
	Stats   Stats    `json:"stats"`
	// Epoch is the maintenance epoch every answer of the batch was
	// computed at (one session, no interleaved maintenance).
	Epoch uint64 `json:"epoch"`
	Err   error  `json:"-"`
}

// RunBatch executes each request against one Querier in order, stamping
// every answer with the session's epoch observed once up front — the
// amortization the batched Store.Query entry point is for. Load
// generators and the HTTP layer share this helper so in-process and
// served batches behave identically.
func RunBatch(ctx context.Context, q Querier, reqs []Request) []Response {
	epoch := q.Epoch()
	out := make([]Response, len(reqs))
	for i, req := range reqs {
		out[i].Epoch = epoch
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				out[i].Err = fmt.Errorf("road: batch entry %d: %w: %w", i, ErrCanceled, err)
				out[i].Stats.Truncated = true
				continue
			}
		}
		switch {
		case req.KNN != nil:
			out[i].Results, out[i].Stats, out[i].Err = q.KNNContext(ctx, *req.KNN)
		case req.Within != nil:
			out[i].Results, out[i].Stats, out[i].Err = q.WithinContext(ctx, *req.Within)
		case req.Path != nil:
			var p Path
			p, out[i].Stats, out[i].Err = q.PathToContext(ctx, *req.Path)
			out[i].Path, out[i].Dist = p.Nodes, p.Dist
		default:
			out[i].Err = fmt.Errorf("road: batch entry %d names no query kind: %w", i, ErrInvalidRequest)
		}
	}
	return out
}

// validateKNN checks a kNN request's structure against a store of n nodes.
func validateKNN(req KNNRequest, n int) error {
	if req.K < 1 {
		return fmt.Errorf("road: k %d must be ≥ 1: %w", req.K, ErrInvalidRequest)
	}
	if req.MaxRadius < 0 || math.IsNaN(req.MaxRadius) {
		return fmt.Errorf("road: max radius %v must be ≥ 0: %w", req.MaxRadius, ErrInvalidRequest)
	}
	if req.Budget < 0 {
		return fmt.Errorf("road: budget %d must be ≥ 0: %w", req.Budget, ErrInvalidRequest)
	}
	return checkNode(req.From, n)
}

// validateWithin checks a range request's structure.
func validateWithin(req WithinRequest, n int) error {
	if req.Radius < 0 || math.IsNaN(req.Radius) || math.IsInf(req.Radius, 1) {
		return fmt.Errorf("road: radius %v must be a non-negative finite number: %w", req.Radius, ErrInvalidRequest)
	}
	if req.Budget < 0 {
		return fmt.Errorf("road: budget %d must be ≥ 0: %w", req.Budget, ErrInvalidRequest)
	}
	return checkNode(req.From, n)
}

// validatePath checks a path request's structure.
func validatePath(req PathRequest, n int) error {
	if req.Budget < 0 {
		return fmt.Errorf("road: budget %d must be ≥ 0: %w", req.Budget, ErrInvalidRequest)
	}
	return checkNode(req.From, n)
}

func checkNode(from NodeID, n int) error {
	if int(from) < 0 || int(from) >= n {
		return fmt.Errorf("road: node %d: %w", from, ErrNoSuchNode)
	}
	return nil
}

// clampByRadius truncates a distance-sorted result list at maxRadius —
// how sharded stores honour KNNRequest.MaxRadius (the single-index search
// applies it inside the expansion instead).
func clampByRadius(res []Result, maxRadius float64) []Result {
	if maxRadius <= 0 {
		return res
	}
	for len(res) > 0 && res[len(res)-1].Dist > maxRadius {
		res = res[:len(res)-1]
	}
	return res
}
