package road

import (
	"context"
	"fmt"
	"time"

	"road/internal/obs"
	"road/internal/shard"
	"road/internal/shard/remote"
	"road/internal/snapshot"
)

// RemoteDB is a ROAD database whose K region shards live in other
// processes — roadshard hosts — behind the same query router ShardedDB
// uses in-process. The router keeps only the global mirror (identity
// maps, border tables, nearest-border distances); all per-shard search
// and mutation compute happens on the hosts, reached over HTTP/JSON with
// pooled connections, per-call timeouts, bounded retries on idempotent
// reads and hedged duplicates for straggling cross-shard expansions.
//
// The query and maintenance surface is ShardedDB's: a RemoteDB satisfies
// Store and Synchronized, so the serving layer runs unmodified over
// either deployment. Differences worth knowing:
//
//   - Persistence lives on the hosts. Save ignores its path argument and
//     instead asks every host to snapshot its shards and rotate its
//     journals; CompactJournal is a no-op (rotation rides the snapshot).
//   - Maintenance ops are write-ahead journaled BY THE HOST before they
//     apply, so a crashed host replays every op it acknowledged. The
//     router itself journals nothing.
//   - A host that stops answering health probes is marked down: calls
//     needing its shards fail fast with ErrShardUnavailable (HTTP 503
//     through the serving layer) while other shards keep serving. When
//     the host returns, the fleet re-adopts its shards — re-fetching
//     their exported state, which reflects the replayed journal — without
//     a router restart.
type RemoteDB struct {
	fleet *remote.Fleet
	r     *shard.Router

	// sess serves the DB-level convenience queries (single-threaded,
	// like DB's own methods); concurrent callers use NewSession.
	sess *shard.Session
}

// RemoteOptions configures OpenRemote. The zero value is usable.
type RemoteOptions struct {
	// Registry receives the road_remote_* metric families: per-host RPC
	// latency histograms (which also calibrate the hedging delay), error
	// counters, hedge counters and up/down gauges. Nil keeps them in a
	// private registry.
	Registry *obs.Registry
	// HealthInterval is the per-host health probe period (default 1s).
	HealthInterval time.Duration
	// DownAfter is the number of consecutive failed probes that mark a
	// host down (default 2).
	DownAfter int
	// Logf receives host up/down transitions (default log.Printf).
	Logf func(format string, args ...any)
}

// OpenRemote connects to a fleet of roadshard hosts, discovers which
// host serves which shard, fetches every shard's exported routing state
// (borders, border-distance table, nearest-border array, identity maps)
// and assembles the mirror router. Every shard ID 0..K-1 of the
// deployment must be served by exactly one host. Health checking starts
// immediately; Close stops it.
func OpenRemote(ctx context.Context, hosts []string, o RemoteOptions) (*RemoteDB, error) {
	f, err := remote.ConnectFleet(ctx, hosts, remote.FleetConfig{
		Registry:       o.Registry,
		HealthInterval: o.HealthInterval,
		DownAfter:      o.DownAfter,
		Logf:           o.Logf,
	})
	if err != nil {
		return nil, err
	}
	return &RemoteDB{fleet: f, r: f.Router()}, nil
}

// Fleet exposes the underlying host fleet (serving layers, benchmark
// harnesses, tests).
func (db *RemoteDB) Fleet() *remote.Fleet { return db.fleet }

// Router exposes the underlying mirror router for advanced use.
func (db *RemoteDB) Router() *shard.Router { return db.r }

// Close stops the health loops. In-flight RPCs finish on their own
// timeouts.
func (db *RemoteDB) Close() { db.fleet.Close() }

// NumShards returns the number of region shards across the fleet.
func (db *RemoteDB) NumShards() int { return db.r.NumShards() }

// Epoch returns the maintenance epoch: the sum of the host-reported
// shard epochs. See ShardedDB.Epoch.
func (db *RemoteDB) Epoch() uint64 { return db.r.Epoch() }

// IndexSizeBytes estimates total index storage across the fleet
// (host-reported per shard).
func (db *RemoteDB) IndexSizeBytes() int64 { return db.r.IndexSizeBytes() }

// ShardInfos reports per-shard size, epoch and load counters; the
// serving layer's /stats and per-shard metrics read these.
func (db *RemoteDB) ShardInfos() []shard.Info { return db.r.Infos() }

// HomeShardOf returns the shard holding node n, or -1 for an unknown
// node. Safe on the query hot path (the topology is fixed after build).
func (db *RemoteDB) HomeShardOf(n NodeID) int { return int(db.r.HomeOf(n)) }

// FleetStatus reports per-host health, RPC latency percentiles and
// hedge/re-adoption counters; the serving layer's /fleet endpoint
// surfaces it.
func (db *RemoteDB) FleetStatus() remote.FleetStatus { return db.fleet.Status() }

// NumNodes returns the global intersection count (fixed at build time).
func (db *RemoteDB) NumNodes() int { return db.r.Graph().NumNodes() }

// NumRoads returns the global road-segment count (including closed
// ones).
func (db *RemoteDB) NumRoads() int { return db.r.NumEdges() }

// NumObjects returns the number of live objects across all shards,
// tracked router-side. Safe to call concurrently.
func (db *RemoteDB) NumObjects() int { return db.r.NumObjects() }

// --- Queries (single-threaded convenience, mirroring ShardedDB) ---

func (db *RemoteDB) session() *shard.Session {
	if db.sess == nil {
		db.sess = db.r.NewSession()
	}
	return db.sess
}

// RemoteSession is an independent cross-shard read-only query context
// over the fleet; any number may query concurrently.
type RemoteSession struct {
	s  *shard.Session
	db *RemoteDB
}

// NewSession returns a concurrent cross-shard query context.
func (db *RemoteDB) NewSession() *RemoteSession {
	return &RemoteSession{s: db.r.NewSession(), db: db}
}

// Epoch returns the maintenance epoch as seen by this session.
func (s *RemoteSession) Epoch() uint64 { return s.s.Epoch() }

// KNNContext answers a kNN request across the fleet; see
// ShardedDB.KNNContext. A query that needs a down host fails with
// ErrShardUnavailable.
func (db *RemoteDB) KNNContext(ctx context.Context, req KNNRequest) ([]Result, Stats, error) {
	if err := validateKNN(req, db.NumNodes()); err != nil {
		return nil, Stats{}, err
	}
	res, stats, err := db.session().KNNLimited(req.From, req.K, req.Attr, searchLimits(ctx, req.Budget))
	return clampByRadius(res, req.MaxRadius), stats, err
}

// WithinContext answers a range request across the fleet.
func (db *RemoteDB) WithinContext(ctx context.Context, req WithinRequest) ([]Result, Stats, error) {
	if err := validateWithin(req, db.NumNodes()); err != nil {
		return nil, Stats{}, err
	}
	return db.session().WithinLimited(req.From, req.Radius, req.Attr, searchLimits(ctx, req.Budget))
}

// PathToContext answers a detailed-route request across the fleet.
func (db *RemoteDB) PathToContext(ctx context.Context, req PathRequest) (Path, Stats, error) {
	if err := validatePath(req, db.NumNodes()); err != nil {
		return Path{}, Stats{}, err
	}
	if err := db.checkPathAttr(req); err != nil {
		return Path{}, Stats{}, err
	}
	nodes, dist, stats, err := db.session().PathToLimited(req.From, req.Object, searchLimits(ctx, req.Budget))
	return Path{Nodes: nodes, Dist: dist}, stats, err
}

// checkPathAttr enforces PathRequest.Attr like ShardedDB.checkPathAttr,
// but through ObjectErr: the object payload lives on a host, and "host
// unreachable" must surface as ErrShardUnavailable, not ErrNoSuchObject.
func (db *RemoteDB) checkPathAttr(req PathRequest) error {
	if req.Attr == 0 {
		return nil
	}
	o, ok, err := db.r.ObjectErr(req.Object)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("road: object %d: %w", req.Object, ErrNoSuchObject)
	}
	if o.Attr != req.Attr {
		return fmt.Errorf("road: object %d does not match attribute %d: %w", req.Object, req.Attr, ErrAttrMismatch)
	}
	return nil
}

// Query answers a batch on the RemoteDB's cached session; see DB.Query.
func (db *RemoteDB) Query(ctx context.Context, reqs []Request) []Response {
	return RunBatch(ctx, &RemoteSession{s: db.session(), db: db}, reqs)
}

// OpenSession returns a concurrent cross-fleet read context as a Querier.
func (db *RemoteDB) OpenSession() Querier { return db.NewSession() }

// --- RemoteSession: Querier implementation ---

// KNNContext is the session variant of RemoteDB.KNNContext.
func (s *RemoteSession) KNNContext(ctx context.Context, req KNNRequest) ([]Result, Stats, error) {
	if err := validateKNN(req, s.db.NumNodes()); err != nil {
		return nil, Stats{}, err
	}
	res, stats, err := s.s.KNNLimited(req.From, req.K, req.Attr, searchLimits(ctx, req.Budget))
	return clampByRadius(res, req.MaxRadius), stats, err
}

// WithinContext is the session variant of RemoteDB.WithinContext.
func (s *RemoteSession) WithinContext(ctx context.Context, req WithinRequest) ([]Result, Stats, error) {
	if err := validateWithin(req, s.db.NumNodes()); err != nil {
		return nil, Stats{}, err
	}
	return s.s.WithinLimited(req.From, req.Radius, req.Attr, searchLimits(ctx, req.Budget))
}

// PathToContext is the session variant of RemoteDB.PathToContext.
func (s *RemoteSession) PathToContext(ctx context.Context, req PathRequest) (Path, Stats, error) {
	if err := validatePath(req, s.db.NumNodes()); err != nil {
		return Path{}, Stats{}, err
	}
	if err := s.db.checkPathAttr(req); err != nil {
		return Path{}, Stats{}, err
	}
	nodes, dist, stats, err := s.s.PathToLimited(req.From, req.Object, searchLimits(ctx, req.Budget))
	return Path{Nodes: nodes, Dist: dist}, stats, err
}

// --- Maintenance (write-ahead journaled on the hosts) ---

// applyOp encodes one mutation under the router's per-shard locking and
// ships it to the owning shard's host, which write-ahead logs it before
// applying. No router-side journal exists; recovery is per-host.
func (db *RemoteDB) applyOp(encode func() (shard.ID, snapshot.Op, error)) (snapshot.Op, error) {
	return db.r.Mutate(encode, func(sid shard.ID, op snapshot.Op) error {
		return db.r.ApplyOp(sid, op, true)
	})
}

// AddObject places an object on road e at distance offset from the
// road's U endpoint. See DB.AddObject.
func (db *RemoteDB) AddObject(e EdgeID, offset float64, attr int32) (Object, error) {
	var obj Object
	_, err := db.r.Mutate(func() (shard.ID, snapshot.Op, error) {
		return db.r.EncodeInsertObject(e, offset, attr)
	}, func(sid shard.ID, op snapshot.Op) error {
		if err := db.r.ApplyOp(sid, op, true); err != nil {
			return err
		}
		// Resolve the inserted object's global form while the shard
		// write lock still excludes a concurrent deletion of it.
		o, ok := db.r.ObjectInShard(sid, op.Object)
		if !ok {
			return fmt.Errorf("road: object %d missing after insert: %w", op.Object, ErrNoSuchObject)
		}
		obj = o
		return nil
	})
	if err != nil {
		return Object{}, err
	}
	return obj, nil
}

// RemoveObject deletes an object.
func (db *RemoteDB) RemoveObject(id ObjectID) error {
	_, err := db.applyOp(func() (shard.ID, snapshot.Op, error) {
		return db.r.EncodeDeleteObject(id)
	})
	return err
}

// SetObjectAttr changes an object's attribute category.
func (db *RemoteDB) SetObjectAttr(id ObjectID, attr int32) error {
	_, err := db.applyOp(func() (shard.ID, snapshot.Op, error) {
		return db.r.EncodeSetObjectAttr(id, attr)
	})
	return err
}

// SetRoadDistance changes a road's distance metric; the owning host
// repairs its index incrementally and ships the border-table repair
// back for the router's mirror.
func (db *RemoteDB) SetRoadDistance(e EdgeID, dist float64) error {
	_, err := db.applyOp(func() (shard.ID, snapshot.Op, error) {
		return db.r.EncodeSetDistance(e, dist)
	})
	return err
}

// AddRoad inserts a new road segment between existing intersections;
// both endpoints must share a shard (see ShardedDB.AddRoad).
func (db *RemoteDB) AddRoad(u, v NodeID, dist float64) (EdgeID, error) {
	op, err := db.applyOp(func() (shard.ID, snapshot.Op, error) {
		return db.r.EncodeAddRoad(u, v, dist)
	})
	if err != nil {
		return NoEdge, err
	}
	return op.Edge, nil
}

// CloseRoad removes a road segment (objects on it are dropped).
func (db *RemoteDB) CloseRoad(e EdgeID) error {
	_, err := db.applyOp(func() (shard.ID, snapshot.Op, error) {
		return db.r.EncodeClose(e)
	})
	return err
}

// ReopenRoad restores a previously closed road segment.
func (db *RemoteDB) ReopenRoad(e EdgeID) error {
	_, err := db.applyOp(func() (shard.ID, snapshot.Op, error) {
		return db.r.EncodeReopen(e)
	})
	return err
}

// WarmAfterMutation is a no-op like ShardedDB's: host-side trees re-warm
// under the host's write lock before the apply RPC returns.
func (db *RemoteDB) WarmAfterMutation() {}

// Exclusive runs fn with every router lock held: no query or mutation
// overlaps it. Satisfies Synchronized.
func (db *RemoteDB) Exclusive(fn func() error) error { return db.r.Exclusive(fn) }

// --- Persistence (host-owned) ---

// Save asks every host to snapshot its shards and rotate its journals.
// The path argument is ignored: each host persists under the prefix it
// was started with. Runs under the serving layer's exclusion like any
// Store.Save, so the per-host snapshots are epoch-consistent.
func (db *RemoteDB) Save(string) error {
	return db.fleet.Snapshot(db.fleet.Context())
}

// CompactJournal is a no-op: hosts rotate their journals as part of the
// snapshot Save triggers.
func (db *RemoteDB) CompactJournal() error { return nil }

// JournalSeq sums the host-reported journal watermarks — the monotonic
// recovery watermark /metrics exposes, refreshed on every acknowledged
// mutation.
func (db *RemoteDB) JournalSeq() uint64 {
	var sum uint64
	for i := 0; i < db.r.NumShards(); i++ {
		sum += db.r.Shard(i).RemoteSeq()
	}
	return sum
}

// JournalSizeBytes sums the host-reported journal sizes.
func (db *RemoteDB) JournalSizeBytes() int64 {
	var sum int64
	for i := 0; i < db.r.NumShards(); i++ {
		sum += db.r.Shard(i).RemoteJournalBytes()
	}
	return sum
}

// Compile-time interface assertions: RemoteDB serves through the same
// contract as DB and ShardedDB.
var (
	_ Store        = (*RemoteDB)(nil)
	_ Synchronized = (*RemoteDB)(nil)
	_ Querier      = (*RemoteSession)(nil)
)
