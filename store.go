package road

import (
	"context"
	"fmt"

	"road/internal/core"
	"road/internal/obs"
)

// Store is the v1 contract of one logical ROAD search service: queries,
// concurrent sessions, maintenance and persistence behind a single,
// transport-ready interface. Both implementations in this package satisfy
// it — *DB (one index) and *ShardedDB (K region shards behind a query
// router) — so serving layers, load generators and tests are written once
// against the interface and run unchanged over either deployment shape.
//
// Query entry points take a context and a typed request struct (built
// literally, with NewKNN/NewWithin/NewPath, or decoded from JSON) and
// fail with the package's typed sentinel errors. Cancellation is
// cooperative: search loops poll the context every few heap pops, abort
// with ErrCanceled, and return the valid prefix settled so far with
// Stats.Truncated set.
//
// The Store's own query methods are single-threaded conveniences, like
// the methods on the concrete types; concurrent callers take one Querier
// per goroutine from OpenSession. Unless the Store also satisfies
// Synchronized, mutations must not overlap queries — the internal/server
// coordinator enforces exactly that when serving. A Synchronized store
// (ShardedDB) synchronizes internally instead, with per-shard write
// locks, so serving layers let queries and mutations overlap freely.
type Store interface {
	Querier

	// Query answers a batch on one session, amortizing session and epoch
	// acquisition: every Response carries the same Epoch, observed once
	// at the start of the batch. Per-entry failures land in
	// Response.Err; the batch itself never fails. On a Synchronized
	// store a mutation may complete between entries — each answer is
	// individually consistent, but late entries can observe an epoch
	// newer than the stamped one; callers that need the whole batch at
	// one epoch must serve it through an external exclusion (as the
	// internal/server coordinator does for road.DB).
	Query(ctx context.Context, reqs []Request) []Response

	// OpenSession returns an independent concurrent read context. Any
	// number of sessions may query in parallel; none may overlap with
	// mutations on this Store.
	OpenSession() Querier

	// Mutations (write-ahead journaled when a journal is attached).
	AddObject(e EdgeID, offset float64, attr int32) (Object, error)
	RemoveObject(id ObjectID) error
	SetObjectAttr(id ObjectID, attr int32) error
	SetRoadDistance(e EdgeID, dist float64) error
	AddRoad(u, v NodeID, dist float64) (EdgeID, error)
	CloseRoad(e EdgeID) error
	ReopenRoad(e EdgeID) error

	// WarmAfterMutation re-materializes lazily-rebuilt read-path state
	// (shortcut trees) while readers are still excluded; serving layers
	// call it after every mutation, even a failed one — partial mutations
	// invalidate too.
	WarmAfterMutation()

	// Introspection.
	NumNodes() int
	NumRoads() int
	NumObjects() int
	IndexSizeBytes() int64
	JournalSeq() uint64
	JournalSizeBytes() int64

	// Persistence. Save snapshots the store to path — one file for a DB,
	// per-shard files plus a manifest under the path prefix for a
	// ShardedDB — and CompactJournal rotates the attached journal(s),
	// dropping entries the latest snapshot already covers. Both must run
	// with mutations and readers excluded.
	Save(path string) error
	CompactJournal() error
}

// Synchronized marks a Store whose queries and mutations synchronize
// internally, so a serving layer needs no global reader/writer exclusion
// around them. ShardedDB is the package's Synchronized implementation:
// each mutation takes only its owning shard's write lock, stalling that
// shard's readers instead of the whole store. The one operation that
// still needs total exclusion — a consistent whole-store snapshot — runs
// through Exclusive.
type Synchronized interface {
	Store

	// Exclusive runs fn with every internal lock held: no query or
	// mutation overlaps fn, which therefore sees (and may persist) one
	// consistent view of the whole store.
	Exclusive(fn func() error) error
}

// Querier is one read context of a Store: the context-aware query surface
// shared by the Store itself (single-threaded convenience) and its
// sessions (one per concurrent reader).
type Querier interface {
	// KNNContext answers a k-nearest-neighbour request. On ErrCanceled /
	// ErrBudgetExhausted the returned prefix is valid and
	// Stats.Truncated is set.
	KNNContext(ctx context.Context, req KNNRequest) ([]Result, Stats, error)
	// WithinContext answers a range request, closest first.
	WithinContext(ctx context.Context, req WithinRequest) ([]Result, Stats, error)
	// PathToContext answers a detailed-route request.
	PathToContext(ctx context.Context, req PathRequest) (Path, Stats, error)
	// Epoch returns the store's maintenance epoch as seen by this read
	// context — the cache-invalidation fence.
	Epoch() uint64
}

// Path is a detailed route: the physical intersections walked, and the
// network distance including the final offset along the object's road.
type Path struct {
	Nodes []NodeID `json:"nodes"`
	Dist  float64  `json:"dist"`
}

// Compile-time interface assertions: the v1 acceptance contract.
var (
	_ Store        = (*DB)(nil)
	_ Store        = (*ShardedDB)(nil)
	_ Synchronized = (*ShardedDB)(nil)
	_ Querier      = (*Session)(nil)
	_ Querier      = (*ShardedSession)(nil)
)

// searchLimits folds a request context and budget into core.Limits. A
// context that can never be canceled (Background, TODO) is dropped so
// the hot loop skips the poll entirely — unless it carries a query
// trace (internal/obs), which the search layers read back off
// Limits.Ctx to record per-leg timings.
func searchLimits(ctx context.Context, budget int) core.Limits {
	lim := core.Limits{Budget: budget}
	if ctx != nil && (ctx.Done() != nil || obs.FromContext(ctx) != nil) {
		lim.Ctx = ctx
	}
	return lim
}

// traceSearch starts the single "search" trace leg a single-index query
// records when its context carries a query trace; the sharded router
// records finer-grained per-phase legs instead. The returned func is
// called with the query's settled-node count; without a trace it is a
// shared no-op.
func traceSearch(ctx context.Context) func(pops int) {
	return obs.FromContext(ctx).StartLeg(obs.LegSearch, -1)
}

// --- DB: single-index Store implementation ---

// NumNodes returns the number of intersections in the network.
func (db *DB) NumNodes() int { return db.f.Graph().NumNodes() }

// NumRoads returns the number of road segments (including closed ones).
func (db *DB) NumRoads() int { return db.f.Graph().NumEdges() }

// NumObjects returns the number of live objects.
func (db *DB) NumObjects() int { return db.f.Objects().Len() }

// KNNContext answers a kNN request on the DB's own (single-threaded)
// read context, with full I/O simulation like DB.KNN.
func (db *DB) KNNContext(ctx context.Context, req KNNRequest) ([]Result, Stats, error) {
	if err := validateKNN(req, db.NumNodes()); err != nil {
		return nil, Stats{}, err
	}
	done := traceSearch(ctx)
	res, stats, err := db.f.KNNLimited(core.Query{Node: req.From, Attr: req.Attr}, req.K, req.MaxRadius, searchLimits(ctx, req.Budget))
	done(stats.NodesPopped)
	return res, stats, err
}

// WithinContext answers a range request; see KNNContext.
func (db *DB) WithinContext(ctx context.Context, req WithinRequest) ([]Result, Stats, error) {
	if err := validateWithin(req, db.NumNodes()); err != nil {
		return nil, Stats{}, err
	}
	done := traceSearch(ctx)
	res, stats, err := db.f.RangeLimited(core.Query{Node: req.From, Attr: req.Attr}, req.Radius, searchLimits(ctx, req.Budget))
	done(stats.NodesPopped)
	return res, stats, err
}

// PathToContext answers a detailed-route request; see KNNContext.
// Requires Options.StorePaths (ErrPathsNotStored otherwise).
func (db *DB) PathToContext(ctx context.Context, req PathRequest) (Path, Stats, error) {
	if err := validatePath(req, db.NumNodes()); err != nil {
		return Path{}, Stats{}, err
	}
	done := traceSearch(ctx)
	nodes, dist, stats, err := db.f.PathToLimited(core.Query{Node: req.From, Attr: req.Attr}, req.Object, searchLimits(ctx, req.Budget))
	done(stats.NodesPopped)
	return Path{Nodes: nodes, Dist: dist}, stats, err
}

// Query answers a batch on the DB's cached batch session (allocated on
// first use, reused afterwards — the amortization the entry point is
// for). Like all DB-level query methods it is single-threaded; concurrent
// batches go through OpenSession + RunBatch.
func (db *DB) Query(ctx context.Context, reqs []Request) []Response {
	if db.sess == nil {
		db.sess = db.NewSession()
	}
	return RunBatch(ctx, db.sess, reqs)
}

// OpenSession returns a concurrent read context as a Querier (the
// interface form of NewSession).
func (db *DB) OpenSession() Querier { return db.NewSession() }

// WarmAfterMutation re-materializes invalidated shortcut trees; see
// Store.WarmAfterMutation.
func (db *DB) WarmAfterMutation() { db.f.WarmTrees() }

// Save atomically snapshots the DB to path (Store.Save; the file form of
// SaveSnapshot).
func (db *DB) Save(path string) error { return db.SaveSnapshotFile(path) }

// --- Session: single-index Querier implementation ---

// KNNContext is the session variant of DB.KNNContext (no I/O simulation,
// safe for any number of concurrent sessions).
func (s *Session) KNNContext(ctx context.Context, req KNNRequest) ([]Result, Stats, error) {
	if err := validateKNN(req, s.db.NumNodes()); err != nil {
		return nil, Stats{}, err
	}
	done := traceSearch(ctx)
	res, stats, err := s.s.KNNLimited(core.Query{Node: req.From, Attr: req.Attr}, req.K, req.MaxRadius, searchLimits(ctx, req.Budget))
	done(stats.NodesPopped)
	return res, stats, err
}

// WithinContext is the session variant of DB.WithinContext.
func (s *Session) WithinContext(ctx context.Context, req WithinRequest) ([]Result, Stats, error) {
	if err := validateWithin(req, s.db.NumNodes()); err != nil {
		return nil, Stats{}, err
	}
	done := traceSearch(ctx)
	res, stats, err := s.s.RangeLimited(core.Query{Node: req.From, Attr: req.Attr}, req.Radius, searchLimits(ctx, req.Budget))
	done(stats.NodesPopped)
	return res, stats, err
}

// PathToContext is the session variant of DB.PathToContext.
func (s *Session) PathToContext(ctx context.Context, req PathRequest) (Path, Stats, error) {
	if err := validatePath(req, s.db.NumNodes()); err != nil {
		return Path{}, Stats{}, err
	}
	done := traceSearch(ctx)
	nodes, dist, stats, err := s.s.PathToLimited(core.Query{Node: req.From, Attr: req.Attr}, req.Object, searchLimits(ctx, req.Budget))
	done(stats.NodesPopped)
	return Path{Nodes: nodes, Dist: dist}, stats, err
}

// --- ShardedDB: sharded Store implementation ---

// KNNContext answers a kNN request across shards. MaxRadius is honoured
// by truncating the merged answer (the single-index search applies it
// inside the expansion; results are identical).
func (db *ShardedDB) KNNContext(ctx context.Context, req KNNRequest) ([]Result, Stats, error) {
	if err := validateKNN(req, db.NumNodes()); err != nil {
		return nil, Stats{}, err
	}
	res, stats, err := db.session().KNNLimited(req.From, req.K, req.Attr, searchLimits(ctx, req.Budget))
	return clampByRadius(res, req.MaxRadius), stats, err
}

// WithinContext answers a range request across shards.
func (db *ShardedDB) WithinContext(ctx context.Context, req WithinRequest) ([]Result, Stats, error) {
	if err := validateWithin(req, db.NumNodes()); err != nil {
		return nil, Stats{}, err
	}
	return db.session().WithinLimited(req.From, req.Radius, req.Attr, searchLimits(ctx, req.Budget))
}

// PathToContext answers a detailed-route request across shards (no
// StorePaths needed; legs are recomputed per shard).
func (db *ShardedDB) PathToContext(ctx context.Context, req PathRequest) (Path, Stats, error) {
	if err := validatePath(req, db.NumNodes()); err != nil {
		return Path{}, Stats{}, err
	}
	if err := db.checkPathAttr(req); err != nil {
		return Path{}, Stats{}, err
	}
	nodes, dist, stats, err := db.session().PathToLimited(req.From, req.Object, searchLimits(ctx, req.Budget))
	return Path{Nodes: nodes, Dist: dist}, stats, err
}

// checkPathAttr enforces PathRequest.Attr, which the single-index path
// search checks internally but the shard router (attribute-agnostic by
// design) does not.
func (db *ShardedDB) checkPathAttr(req PathRequest) error {
	if req.Attr == 0 {
		return nil
	}
	o, ok := db.r.Object(req.Object)
	if !ok {
		return fmt.Errorf("road: object %d: %w", req.Object, ErrNoSuchObject)
	}
	if o.Attr != req.Attr {
		return fmt.Errorf("road: object %d does not match attribute %d: %w", req.Object, req.Attr, ErrAttrMismatch)
	}
	return nil
}

// Query answers a batch on the ShardedDB's cached session; see DB.Query.
func (db *ShardedDB) Query(ctx context.Context, reqs []Request) []Response {
	return RunBatch(ctx, db.storeSession(), reqs)
}

// storeSession wraps the DB-level cached shard session as a Querier.
func (db *ShardedDB) storeSession() *ShardedSession {
	return &ShardedSession{s: db.session(), db: db}
}

// OpenSession returns a concurrent cross-shard read context as a Querier.
func (db *ShardedDB) OpenSession() Querier { return db.NewSession() }

// WarmAfterMutation is a no-op for ShardedDB: mutations synchronize
// internally and re-warm the owning shard's shortcut trees before
// releasing its write lock, so by the time any caller could run this,
// the work is already done — and doing it here, outside the locks, would
// race with concurrent readers.
func (db *ShardedDB) WarmAfterMutation() {}

// Save persists the sharded store under the path prefix (Store.Save; the
// interface form of SaveSnapshotFiles).
func (db *ShardedDB) Save(path string) error { return db.SaveSnapshotFiles(path) }

// CompactJournal rotates every attached shard journal (Store.CompactJournal;
// the interface form of CompactJournals).
func (db *ShardedDB) CompactJournal() error { return db.CompactJournals() }

// --- ShardedSession: sharded Querier implementation ---

// KNNContext is the session variant of ShardedDB.KNNContext.
func (s *ShardedSession) KNNContext(ctx context.Context, req KNNRequest) ([]Result, Stats, error) {
	if err := validateKNN(req, s.db.NumNodes()); err != nil {
		return nil, Stats{}, err
	}
	res, stats, err := s.s.KNNLimited(req.From, req.K, req.Attr, searchLimits(ctx, req.Budget))
	return clampByRadius(res, req.MaxRadius), stats, err
}

// WithinContext is the session variant of ShardedDB.WithinContext.
func (s *ShardedSession) WithinContext(ctx context.Context, req WithinRequest) ([]Result, Stats, error) {
	if err := validateWithin(req, s.db.NumNodes()); err != nil {
		return nil, Stats{}, err
	}
	return s.s.WithinLimited(req.From, req.Radius, req.Attr, searchLimits(ctx, req.Budget))
}

// PathToContext is the session variant of ShardedDB.PathToContext.
func (s *ShardedSession) PathToContext(ctx context.Context, req PathRequest) (Path, Stats, error) {
	if err := validatePath(req, s.db.NumNodes()); err != nil {
		return Path{}, Stats{}, err
	}
	if err := s.db.checkPathAttr(req); err != nil {
		return Path{}, Stats{}, err
	}
	nodes, dist, stats, err := s.s.PathToLimited(req.From, req.Object, searchLimits(ctx, req.Budget))
	return Path{Nodes: nodes, Dist: dist}, stats, err
}
