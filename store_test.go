package road

import (
	"context"
	"errors"
	"testing"

	"road/internal/dataset"
)

// TestTypedErrors pins the v1 error contract: every failure mode answers
// a sentinel testable with errors.Is, replacing the former opaque
// fmt.Errorf strings.
func TestTypedErrors(t *testing.T) {
	b, nodes, edges := buildChain(t)
	db, err := Open(b, Options{Fanout: 2, Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if err := db.RemoveObject(999); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("RemoveObject(999) = %v, want ErrNoSuchObject", err)
	}
	if err := db.SetObjectAttr(999, 1); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("SetObjectAttr(999) = %v, want ErrNoSuchObject", err)
	}
	if err := db.ReopenRoad(edges[0]); !errors.Is(err, ErrEdgeNotClosed) {
		t.Fatalf("ReopenRoad(open) = %v, want ErrEdgeNotClosed", err)
	}
	if err := db.CloseRoad(edges[4]); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddObject(edges[4], 0.5, 0); !errors.Is(err, ErrEdgeClosed) {
		t.Fatalf("AddObject(closed) = %v, want ErrEdgeClosed", err)
	}
	if err := db.SetRoadDistance(edges[4], 2); !errors.Is(err, ErrEdgeClosed) {
		t.Fatalf("SetRoadDistance(closed) = %v, want ErrEdgeClosed", err)
	}
	if err := db.CloseRoad(edges[4]); !errors.Is(err, ErrEdgeClosed) {
		t.Fatalf("CloseRoad(closed) = %v, want ErrEdgeClosed", err)
	}

	if _, _, err := db.KNNContext(ctx, NewKNN(nodes[0], 0)); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("KNN k=0 = %v, want ErrInvalidRequest", err)
	}
	if _, _, err := db.KNNContext(ctx, NewKNN(9999, 1)); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("KNN bad node = %v, want ErrNoSuchNode", err)
	}
	if _, _, err := db.WithinContext(ctx, NewWithin(nodes[0], -1)); !errors.Is(err, ErrInvalidRequest) {
		t.Fatalf("Within radius<0 = %v, want ErrInvalidRequest", err)
	}
	// Opened without StorePaths: path queries carry a typed sentinel.
	o, err := db.AddObject(edges[1], 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.PathToContext(ctx, NewPath(nodes[0], o.ID)); !errors.Is(err, ErrPathsNotStored) {
		t.Fatalf("PathTo without StorePaths = %v, want ErrPathsNotStored", err)
	}
	if _, _, err := db.PathToContext(ctx, NewPath(nodes[0], 999)); !errors.Is(err, ErrPathsNotStored) && !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("PathTo bad object = %v, want typed", err)
	}
}

func TestTypedErrorsSharded(t *testing.T) {
	_, sdb := shardedPair(t, 7, 300, 40, 4)
	ctx := context.Background()

	if err := sdb.RemoveObject(999); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("sharded RemoveObject(999) = %v, want ErrNoSuchObject", err)
	}
	if err := sdb.CloseRoad(99999); !errors.Is(err, ErrNoSuchEdge) {
		t.Fatalf("sharded CloseRoad(bad) = %v, want ErrNoSuchEdge", err)
	}
	if _, _, err := sdb.KNNContext(ctx, NewKNN(99999, 1)); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("sharded KNN bad node = %v, want ErrNoSuchNode", err)
	}
	if _, _, err := sdb.PathToContext(ctx, NewPath(0, 9999)); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("sharded PathTo bad object = %v, want ErrNoSuchObject", err)
	}

	// Cross-shard road addition: typed rejection.
	r := sdb.Router()
	interior := func(id int) (NodeID, bool) {
		s := r.Shard(id)
		for _, gn := range s.GlobalNodes() {
			border := false
			for _, b := range s.Borders() {
				if b == gn {
					border = true
					break
				}
			}
			if !border {
				return gn, true
			}
		}
		return 0, false
	}
	u, okU := interior(0)
	v, okV := interior(1)
	if okU && okV {
		if _, err := sdb.AddRoad(u, v, 1); !errors.Is(err, ErrCrossShardRoad) {
			t.Fatalf("cross-shard AddRoad = %v, want ErrCrossShardRoad", err)
		}
	}

	// Attribute predicate on a sharded path query.
	hits, _, err := sdb.KNNContext(ctx, NewKNN(0, 1))
	if err != nil || len(hits) == 0 {
		t.Fatalf("no object: %v", err)
	}
	wrongAttr := hits[0].Object.Attr + 1
	if _, _, err := sdb.PathToContext(ctx, NewPath(0, hits[0].Object.ID, WithAttr(wrongAttr))); !errors.Is(err, ErrAttrMismatch) {
		t.Fatalf("sharded PathTo attr mismatch = %v, want ErrAttrMismatch", err)
	}
}

// TestBatchQuery exercises Store.Query on both shapes: one session, one
// epoch, per-entry typed errors, mixed query kinds.
func TestBatchQuery(t *testing.T) {
	db, sdb := shardedPair(t, 9, 320, 50, 4)
	ctx := context.Background()
	for _, tc := range []struct {
		name  string
		store Store
	}{{"db", db}, {"sharded", sdb}} {
		knn := NewKNN(1, 3)
		within := NewWithin(2, 4.0)
		badNode := NewKNN(99999, 1)
		hits, _, err := tc.store.KNNContext(ctx, NewKNN(1, 1))
		if err != nil || len(hits) == 0 {
			t.Fatalf("%s: seed query failed: %v", tc.name, err)
		}
		path := NewPath(1, hits[0].Object.ID)
		reqs := []Request{
			{KNN: &knn},
			{Within: &within},
			{Path: &path},
			{KNN: &badNode},
			{}, // empty entry: invalid
		}
		answers := tc.store.Query(ctx, reqs)
		if len(answers) != len(reqs) {
			t.Fatalf("%s: %d answers for %d requests", tc.name, len(answers), len(reqs))
		}
		epoch := tc.store.Epoch()
		for i, a := range answers {
			if a.Epoch != epoch {
				t.Fatalf("%s: entry %d epoch %d, want %d", tc.name, i, a.Epoch, epoch)
			}
		}
		if answers[0].Err != nil || len(answers[0].Results) == 0 {
			t.Fatalf("%s: knn entry failed: %v", tc.name, answers[0].Err)
		}
		if answers[1].Err != nil {
			t.Fatalf("%s: within entry failed: %v", tc.name, answers[1].Err)
		}
		if answers[2].Err != nil || len(answers[2].Path) == 0 || answers[2].Dist <= 0 {
			t.Fatalf("%s: path entry = %+v (%v)", tc.name, answers[2], answers[2].Err)
		}
		if !errors.Is(answers[3].Err, ErrNoSuchNode) {
			t.Fatalf("%s: bad-node entry err = %v, want ErrNoSuchNode", tc.name, answers[3].Err)
		}
		if !errors.Is(answers[4].Err, ErrInvalidRequest) {
			t.Fatalf("%s: empty entry err = %v, want ErrInvalidRequest", tc.name, answers[4].Err)
		}
		// Batch answers agree with single-query answers.
		single, _, err := tc.store.KNNContext(ctx, knn)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, tc.name+" batch-vs-single", single, answers[0].Results)
	}
}

// TestStatsAggregation pins the satellite fix: cross-shard expansions
// report nodes-visited and shard counts consistently with the
// single-index path — PathTo included, which used to drop its stats.
func TestStatsAggregation(t *testing.T) {
	db, sdb := shardedPair(t, 11, 320, 50, 4)
	ctx := context.Background()

	// Single-index: exactly one framework searched.
	_, st, err := db.KNNContext(ctx, NewKNN(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardsSearched < 1 || st.NodesPopped == 0 {
		t.Fatalf("db stats = %+v", st)
	}

	// The exact sharded invariant: ShardsSearched = home shards + remote
	// entries. The watched fast-path re-run revisits the home shard and
	// must NOT count, so a query that never crosses a boundary reports 1.
	sumRemote := func() uint64 {
		var s uint64
		for _, inf := range sdb.ShardInfos() {
			s += inf.RemoteEntries
		}
		return s
	}
	homesOf := func(n NodeID) int {
		homes := 0
		for i := 0; i < sdb.NumShards(); i++ {
			if _, ok := sdb.Router().Shard(i).LocalNode(n); ok {
				homes++
			}
		}
		return homes
	}
	for n := NodeID(0); n < 40; n++ {
		homes := homesOf(n)
		if homes == 0 {
			continue // edge-less node
		}
		for _, k := range []int{1, 4, 25} {
			before := sumRemote()
			_, st, err := sdb.KNNContext(ctx, NewKNN(n, k))
			if err != nil {
				t.Fatal(err)
			}
			want := homes + int(sumRemote()-before)
			if st.ShardsSearched != want {
				t.Fatalf("node %d k=%d: ShardsSearched %d, want %d (homes %d + remote entries)",
					n, k, st.ShardsSearched, want, homes)
			}
		}
	}

	// Sharded, from a border node: several home shards must be counted.
	border := sdb.Router().Shard(0).Borders()[0]
	_, st, err = sdb.KNNContext(ctx, NewKNN(border, 5))
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardsSearched < 2 {
		t.Fatalf("border kNN reports %d shards searched, want ≥ 2", st.ShardsSearched)
	}
	if st.NodesPopped == 0 {
		t.Fatal("border kNN reports zero nodes popped")
	}

	// PathTo now reports stats on both shapes.
	hits, _, err := sdb.KNNContext(ctx, NewKNN(border, 1))
	if err != nil || len(hits) == 0 {
		t.Fatalf("no object: %v", err)
	}
	_, pst, err := sdb.PathToContext(ctx, NewPath(border, hits[0].Object.ID))
	if err != nil {
		t.Fatal(err)
	}
	if pst.NodesPopped == 0 || pst.ShardsSearched == 0 {
		t.Fatalf("sharded PathTo stats empty: %+v", pst)
	}

	g := dataset.MustGenerate(dataset.Spec{Name: "pstats", Nodes: 200, Edges: 240, Seed: 3})
	set := dataset.PlaceUniform(g, 10, 4)
	db2, err := OpenWithObjects(FromGraph(g), set, Options{StorePaths: true})
	if err != nil {
		t.Fatal(err)
	}
	hits2, _, err := db2.KNNContext(ctx, NewKNN(0, 1))
	if err != nil || len(hits2) == 0 {
		t.Fatalf("no object on single-index: %v", err)
	}
	_, pst2, err := db2.PathToContext(ctx, NewPath(0, hits2[0].Object.ID))
	if err != nil {
		t.Fatal(err)
	}
	if pst2.NodesPopped == 0 || pst2.ShardsSearched != 1 {
		t.Fatalf("single-index PathTo stats: %+v", pst2)
	}
}

// TestMaxRadiusOption: the kNN stop bound returns identical answers on
// both shapes (applied in-search for DB, by truncation for ShardedDB).
func TestMaxRadiusOption(t *testing.T) {
	db, sdb := shardedPair(t, 13, 320, 60, 4)
	ctx := context.Background()
	for n := NodeID(0); n < 25; n++ {
		full, _, err := db.KNNContext(ctx, NewKNN(n, 8))
		if err != nil {
			t.Fatal(err)
		}
		if len(full) < 3 {
			continue
		}
		cut := full[2].Dist
		wantN := 0
		for _, r := range full {
			if r.Dist <= cut {
				wantN++
			}
		}
		got, _, err := db.KNNContext(ctx, NewKNN(n, 8, WithMaxRadius(cut)))
		if err != nil {
			t.Fatal(err)
		}
		gotSharded, _, err := sdb.KNNContext(ctx, NewKNN(n, 8, WithMaxRadius(cut)))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != wantN || len(gotSharded) != wantN {
			t.Fatalf("node %d: MaxRadius answers %d (db) / %d (sharded), want %d",
				n, len(got), len(gotSharded), wantN)
		}
	}
}
