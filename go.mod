module road

go 1.24
