package road

// One testing.B benchmark per table/figure of the paper's evaluation (§6),
// plus the ablations DESIGN.md calls out. Each benchmark executes the full
// experiment — building all four approaches over the synthetic networks,
// running the workload, and printing the same rows the paper reports — so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation. By default NA and SF run as scaled
// stand-ins (≈21k nodes); set ROAD_FULLSCALE=1 for the paper's node
// counts. EXPERIMENTS.md records measured outputs for both and compares
// them with the paper's reported trends.

import (
	"os"
	"testing"

	"road/internal/bench"
)

// runExperiment executes one registered experiment per benchmark
// iteration, printing its table once.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	opt := bench.DefaultOptions()
	run, ok := bench.Registry[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	printed := false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := run(opt)
		if err != nil {
			b.Fatal(err)
		}
		if !printed {
			b.StopTimer()
			tbl.Fprint(os.Stdout)
			printed = true
			b.StartTimer()
		}
	}
}

func BenchmarkFig11_3NNIllustration(b *testing.B)    { runExperiment(b, "fig11") }
func BenchmarkFig13_IndexVsObjects(b *testing.B)     { runExperiment(b, "fig13") }
func BenchmarkFig14_IndexVsNetwork(b *testing.B)     { runExperiment(b, "fig14") }
func BenchmarkFig15_ObjectUpdate(b *testing.B)       { runExperiment(b, "fig15") }
func BenchmarkFig16_NetworkUpdate(b *testing.B)      { runExperiment(b, "fig16") }
func BenchmarkFig17a_KNNVsK(b *testing.B)            { runExperiment(b, "fig17a") }
func BenchmarkFig17b_KNNVsObjects(b *testing.B)      { runExperiment(b, "fig17b") }
func BenchmarkFig17c_KNNVsNetwork(b *testing.B)      { runExperiment(b, "fig17c") }
func BenchmarkFig18a_RangeVsR(b *testing.B)          { runExperiment(b, "fig18a") }
func BenchmarkFig18b_RangeVsObjects(b *testing.B)    { runExperiment(b, "fig18b") }
func BenchmarkFig18c_RangeVsNetwork(b *testing.B)    { runExperiment(b, "fig18c") }
func BenchmarkFig19_LevelSweep(b *testing.B)         { runExperiment(b, "fig19") }
func BenchmarkAblation_ShortcutPruning(b *testing.B) { runExperiment(b, "ablation-pruning") }
func BenchmarkAblation_AbstractKind(b *testing.B)    { runExperiment(b, "ablation-abstract") }
func BenchmarkAblation_Partitioner(b *testing.B)     { runExperiment(b, "ablation-partition") }
func BenchmarkAblation_ObjectSkew(b *testing.B)      { runExperiment(b, "ablation-skew") }
