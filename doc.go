// Package road is a Go implementation of ROAD — the Route-Overlay /
// Association-Directory framework for fast object search on road networks
// (Lee, Lee, Zheng; EDBT 2009).
//
// ROAD evaluates location-dependent spatial queries — k-nearest-neighbour
// and range search over points of interest — on large road networks. The
// network is recursively partitioned into regional sub-networks (Rnets)
// augmented with shortcuts (precomputed shortest paths between region
// border nodes) and object abstracts (summaries of the objects inside each
// region). A search expands from the query point like Dijkstra, but hops
// over entire object-free regions via shortcuts instead of crawling them
// edge by edge.
//
// # The Store v1 API
//
// One logical search service hides behind the Store interface, with two
// implementations: DB (a single index) and ShardedDB (K region shards
// behind a query router, the deployment shape for big networks). Code
// written against Store runs unchanged over either.
//
// Queries take a context and a typed request built with functional
// options:
//
//	b := road.NewNetworkBuilder()
//	a := b.AddNode(0, 0)
//	c := b.AddNode(1, 0)
//	e, _ := b.AddRoad(a, c, 1.5)
//	db, _ := road.Open(b, road.Options{})
//	db.AddObject(e, 0.5, 0) // a POI mid-road
//
//	hits, stats, err := db.KNNContext(ctx, road.NewKNN(a, 1))
//	near, _, err := db.WithinContext(ctx, road.NewWithin(a, 2.0, road.WithAttr(7)))
//
// Cancellation is cooperative: search loops poll the context every few
// heap pops, so an expired deadline aborts an in-flight expansion within
// microseconds, returning ErrCanceled plus the valid prefix settled so
// far with Stats.Truncated set. WithBudget bounds a query by settled
// nodes instead of time. Errors are typed sentinels — test with
// errors.Is against ErrNoSuchNode, ErrEdgeClosed, ErrCanceled, and
// friends.
//
// Batches amortize session and epoch acquisition:
//
//	k := road.NewKNN(a, 3)
//	w := road.NewWithin(c, 1.0)
//	answers := db.Query(ctx, []road.Request{{KNN: &k}, {Within: &w}})
//
// Concurrent readers take one Querier each from Store.OpenSession. A DB
// does no locking between queries and maintenance (the internal/server
// subsystem, command roadd, layers an epoch-guarded coordinator on top
// when serving traffic); a ShardedDB synchronizes internally — it
// satisfies Synchronized — with per-shard write locks, so queries and
// mutations may overlap and a mutation stalls only readers of the one
// shard it touches.
//
// The store separates the network from the objects: road closures,
// distance (or travel-time) changes and object churn are all incremental
// — a ShardedDB repairs the touched shard's border distance tables with
// the paper's §5.2 filter-and-refresh technique rather than rebuilding
// them — and snapshots plus a write-ahead journal (Save, CompactJournal,
// OpenSnapshotFile, ReplayJournal) make restarts O(load) instead of
// O(build).
//
// The ctx-less methods (KNN, Within, PathTo) are the deprecated v0
// surface, kept as thin wrappers until the removal PR; MIGRATION.md maps
// old signatures to new.
package road
