// Live traffic maintenance: edge weights are travel times that change as
// congestion builds and clears, and roads occasionally close outright.
// ROAD's filter-and-refresh maintenance (§5.2) repairs only the affected
// shortcuts; this example measures update latencies and verifies queries
// stay exact against a plain Dijkstra oracle after every batch.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"road"
	"road/internal/dataset"
	"road/internal/graph"
)

func main() {
	g := dataset.MustGenerate(dataset.Scaled(dataset.CA(), 0.25))
	objects := dataset.PlaceUniform(g, 60, 3)
	db, err := road.OpenWithObjects(road.FromGraph(g), objects, road.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d edges, %d POIs\n\n",
		g.NumNodes(), g.NumEdges(), objects.Len())

	rng := rand.New(rand.NewSource(5))
	oracle := graph.NewSearch(g)
	queries := dataset.RandomNodes(g, 10, 8)

	for round := 1; round <= 3; round++ {
		// Congestion wave: 25 random segments slow down 1.5–4×, 25
		// previously slowed segments partially recover.
		var totalUpdate time.Duration
		for i := 0; i < 50; i++ {
			e := graph.EdgeID(rng.Intn(g.NumEdges()))
			if g.Edge(e).Removed {
				continue
			}
			factor := 1.5 + rng.Float64()*2.5
			if i%2 == 1 {
				factor = 1 / factor
			}
			start := time.Now()
			if err := db.SetRoadDistance(e, g.Weight(e)*factor); err != nil {
				log.Fatal(err)
			}
			totalUpdate += time.Since(start)
		}
		// One road closes, one reopens later.
		closed := pickClosable(g, rng)
		if closed != graph.NoEdge {
			start := time.Now()
			if err := db.CloseRoad(closed); err != nil {
				log.Fatal(err)
			}
			totalUpdate += time.Since(start)
		}

		// Verify a query batch against ground truth, through the batched
		// v1 entry point (one session, one epoch for the whole batch).
		reqs := make([]road.Request, len(queries))
		for i, q := range queries {
			k := road.NewKNN(q, 3)
			reqs[i] = road.Request{KNN: &k}
		}
		mismatches := 0
		for i, ans := range db.Query(context.Background(), reqs) {
			if ans.Err != nil {
				log.Fatal(ans.Err)
			}
			want := bruteKNN(g, objects, oracle, queries[i], 3)
			if !same(ans.Results, want) {
				mismatches++
			}
		}
		fmt.Printf("round %d: 50 reweights + 1 closure in %v total "+
			"(%v avg); %d/%d verification queries exact\n",
			round, totalUpdate.Round(time.Microsecond),
			(totalUpdate / 51).Round(time.Microsecond),
			len(queries)-mismatches, len(queries))
		if mismatches > 0 {
			log.Fatal("query results diverged from ground truth")
		}

		if closed != graph.NoEdge {
			if err := db.ReopenRoad(closed); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("\nall rounds verified: incremental maintenance kept ROAD exact")
}

func pickClosable(g *graph.Graph, rng *rand.Rand) graph.EdgeID {
	for tries := 0; tries < 100; tries++ {
		e := graph.EdgeID(rng.Intn(g.NumEdges()))
		ed := g.Edge(e)
		if !ed.Removed && g.Degree(ed.U) > 1 && g.Degree(ed.V) > 1 {
			return e
		}
	}
	return graph.NoEdge
}

func bruteKNN(g *graph.Graph, objects *graph.ObjectSet, s *graph.Search, q graph.NodeID, k int) []float64 {
	s.Run(q, graph.Options{})
	var dists []float64
	for _, o := range objects.All() {
		e := g.Edge(o.Edge)
		if e.Removed {
			continue
		}
		d := math.Inf(1)
		if du := s.Dist(e.U); du+o.DU < d {
			d = du + o.DU
		}
		if dv := s.Dist(e.V); dv+o.DV < d {
			d = dv + o.DV
		}
		if !math.IsInf(d, 1) {
			dists = append(dists, d)
		}
	}
	for i := 0; i < len(dists); i++ {
		for j := i + 1; j < len(dists); j++ {
			if dists[j] < dists[i] {
				dists[i], dists[j] = dists[j], dists[i]
			}
		}
	}
	if len(dists) > k {
		dists = dists[:k]
	}
	return dists
}

func same(res []road.Result, want []float64) bool {
	if len(res) != len(want) {
		return false
	}
	for i := range res {
		if math.Abs(res[i].Dist-want[i]) > 1e-9*math.Max(1, want[i]) {
			return false
		}
	}
	return true
}
