// Logistics coverage analysis: a delivery company with a handful of depots
// on a highway network wants, for each depot, the customers reachable
// within a drive-distance budget — a batch of range queries — and for each
// customer the closest depot — a batch of 1NN queries over a second object
// set sharing the same Route Overlay. Demonstrates ROAD's clean separation
// of one network from multiple independently-maintained object sets.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"road"
	"road/internal/core"
	"road/internal/dataset"
	"road/internal/graph"
)

func main() {
	// A CA-class highway network at quarter scale.
	g := dataset.MustGenerate(dataset.Scaled(dataset.CA(), 0.25))
	fmt.Printf("highway network: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	rng := rand.New(rand.NewSource(9))

	// Object set 1: customers, clustered around three metro areas.
	customers := dataset.PlaceClustered(g, 120, 3, 11)

	// Object set 2: depots, a handful of uniform sites.
	depots := graph.NewObjectSet(g)
	var depotEdges []graph.EdgeID
	for i := 0; i < 4; i++ {
		e := graph.EdgeID(rng.Intn(g.NumEdges()))
		depots.MustAdd(e, g.Weight(e)/2, 0)
		depotEdges = append(depotEdges, e)
	}

	db, err := road.OpenWithObjects(road.FromGraph(g), customers, road.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Attach the depot directory to the same overlay.
	depotDir := db.Framework().AttachObjects(depots, road.AbstractSet)

	budget := g.EstimateDiameter() * 0.15
	fmt.Printf("drive-distance budget per depot: %.2f\n\n", budget)

	// Coverage per depot: one BATCH of range queries through the v1
	// Store API — every answer computed on one session at one epoch,
	// exactly how a fleet-planning service would amortize the work.
	reqs := make([]road.Request, len(depotEdges))
	for i, e := range depotEdges {
		w := road.NewWithin(g.Edge(e).U, budget)
		reqs[i] = road.Request{Within: &w}
	}
	covered := map[graph.ObjectID]bool{}
	for i, ans := range db.Query(context.Background(), reqs) {
		if ans.Err != nil {
			log.Fatal(ans.Err)
		}
		for _, r := range ans.Results {
			covered[r.Object.ID] = true
		}
		fmt.Printf("depot %d (node %d): %d customers in range "+
			"(settled %d nodes, bypassed %d regions, epoch %d)\n",
			i, reqs[i].Within.From, len(ans.Results),
			ans.Stats.NodesPopped, ans.Stats.RnetsBypassed, ans.Epoch)
	}
	fmt.Printf("\ntotal coverage: %d of %d customers\n\n", len(covered), customers.Len())

	// Closest depot per customer sample: 1NN against the depot directory.
	fmt.Println("closest depot for 5 sample customers:")
	sample := customers.All()
	for i := 0; i < 5 && i < len(sample); i++ {
		c := sample[i]
		from := g.Edge(c.Edge).U
		res, _ := db.Framework().KNNOn(depotDir, core.Query{Node: from}, 1)
		if len(res) == 0 {
			fmt.Printf("  customer %d: unreachable\n", c.ID)
			continue
		}
		fmt.Printf("  customer %d -> depot object %d at %.2f\n",
			c.ID, res[0].Object.ID, res[0].Dist)
	}
}
