// Quickstart: build a toy road network by hand, index it with ROAD, place
// a few points of interest and run the two core query types.
package main

import (
	"context"
	"fmt"
	"log"

	"road"
)

func main() {
	// A small town: a 4×3 grid of intersections, unit-length blocks.
	b := road.NewNetworkBuilder()
	const w, h = 4, 3
	var nodes [h][w]road.NodeID
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			nodes[y][x] = b.AddNode(float64(x), float64(y))
		}
	}
	var roads []road.EdgeID
	addRoad := func(u, v road.NodeID) road.EdgeID {
		e, err := b.AddRoad(u, v, 1)
		if err != nil {
			log.Fatal(err)
		}
		roads = append(roads, e)
		return e
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				addRoad(nodes[y][x], nodes[y][x+1])
			}
			if y+1 < h {
				addRoad(nodes[y][x], nodes[y+1][x])
			}
		}
	}

	db, err := road.Open(b, road.Options{Fanout: 2, Levels: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Two cafés and a pharmacy. Attribute categories are app-defined.
	const (
		cafe     = 1
		pharmacy = 2
	)
	db.AddObject(roads[0], 0.5, cafe)
	db.AddObject(roads[len(roads)-1], 0.25, cafe)
	db.AddObject(roads[len(roads)/2], 0.75, pharmacy)

	home := nodes[0][0]
	ctx := context.Background()

	// Queries go through the road.Store v1 API: a context plus a typed
	// request built with functional options.
	fmt.Println("nearest café to home:")
	hits, stats, err := db.KNNContext(ctx, road.NewKNN(home, 1, road.WithAttr(cafe)))
	if err != nil {
		log.Fatal(err)
	}
	for _, hit := range hits {
		fmt.Printf("  object %d at network distance %.2f\n", hit.Object.ID, hit.Dist)
	}
	fmt.Printf("  (settled %d intersections, %d simulated page reads)\n",
		stats.NodesPopped, stats.IO.Reads)

	fmt.Println("everything within 3 blocks of home:")
	within, _, err := db.WithinContext(ctx, road.NewWithin(home, 3))
	if err != nil {
		log.Fatal(err)
	}
	for _, hit := range within {
		kind := "café"
		if hit.Object.Attr == pharmacy {
			kind = "pharmacy"
		}
		fmt.Printf("  %s (object %d) at %.2f\n", kind, hit.Object.ID, hit.Dist)
	}

	// Roadworks: the block past home doubles in travel time. The index
	// repairs itself incrementally; queries stay exact.
	if err := db.SetRoadDistance(roads[0], 2); err != nil {
		log.Fatal(err)
	}
	hits, _, err = db.KNNContext(ctx, road.NewKNN(home, 1, road.WithAttr(cafe)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nearest café after roadworks: object %d at %.2f\n",
		hits[0].Object.ID, hits[0].Dist)
}
