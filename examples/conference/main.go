// Conference travel planning — the paper's motivating scenario (§1):
// a conference venue on a city road network where edge weights are walking
// minutes, answering
//
//	Q1: find the nearest bus station to the conference venue
//	Q2: find hotels within a 10-minute walk from the conference venue
//
// The network is a generated city; bus stations and hotels are separate
// attribute categories mapped onto the same Route Overlay, exactly the
// content-provider model the paper describes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"road"
	"road/internal/dataset"
	"road/internal/graph"
)

const (
	busStation int32 = 1
	hotel      int32 = 2
)

func main() {
	// A San-Francisco-class street grid, scaled to a city district.
	// Weights come out of the generator as distances; reinterpret them as
	// walking minutes (the framework is metric-agnostic).
	spec := dataset.Scaled(dataset.SF(), 0.02)
	g := dataset.MustGenerate(spec)
	fmt.Printf("city district: %d intersections, %d street segments\n",
		g.NumNodes(), g.NumEdges())

	objects := graph.NewObjectSet(g)
	rng := rand.New(rand.NewSource(42))
	place := func(n int, attr int32) {
		for i := 0; i < n; i++ {
			e := graph.EdgeID(rng.Intn(g.NumEdges()))
			objects.MustAdd(e, rng.Float64()*g.Weight(e), attr)
		}
	}
	place(25, busStation)
	place(40, hotel)

	db, err := road.OpenWithObjects(road.FromGraph(g), objects, road.Options{StorePaths: true})
	if err != nil {
		log.Fatal(err)
	}

	// The conference venue sits at a random intersection.
	venue := dataset.RandomNodes(g, 1, 7)[0]
	fmt.Printf("conference venue at intersection %d\n\n", venue)

	// Q1: nearest bus station.
	q1, stats := db.KNN(venue, 1, busStation)
	if len(q1) == 0 {
		log.Fatal("no bus station reachable")
	}
	fmt.Printf("Q1: nearest bus station is object %d, %.1f minutes away\n",
		q1[0].Object.ID, q1[0].Dist)
	fmt.Printf("    search settled %d intersections, bypassed %d regions\n",
		stats.NodesPopped, stats.RnetsBypassed)
	if path, _, err := db.PathTo(venue, q1[0].Object.ID); err == nil {
		fmt.Printf("    walking route: %d intersections", len(path))
		if len(path) > 6 {
			fmt.Printf(" (%v ... %v)", path[:3], path[len(path)-3:])
		} else {
			fmt.Printf(" %v", path)
		}
		fmt.Println()
	}
	fmt.Println()

	// Q2: hotels within a 10-minute walk.
	q2, stats := db.Within(venue, 10, hotel)
	fmt.Printf("Q2: %d hotels within a 10-minute walk:\n", len(q2))
	for _, hit := range q2 {
		fmt.Printf("    hotel %d at %.1f min\n", hit.Object.ID, hit.Dist)
	}
	if len(q2) == 0 {
		fmt.Println("    (none — try the 3 nearest instead)")
		for _, hit := range first3(db, venue) {
			fmt.Printf("    hotel %d at %.1f min\n", hit.Object.ID, hit.Dist)
		}
	}
	fmt.Printf("    search settled %d intersections, bypassed %d regions\n",
		stats.NodesPopped, stats.RnetsBypassed)
}

func first3(db *road.DB, venue road.NodeID) []road.Result {
	res, _ := db.KNN(venue, 3, hotel)
	return res
}
