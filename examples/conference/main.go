// Conference travel planning — the paper's motivating scenario (§1):
// a conference venue on a city road network where edge weights are walking
// minutes, answering
//
//	Q1: find the nearest bus station to the conference venue
//	Q2: find hotels within a 10-minute walk from the conference venue
//
// The network is a generated city; bus stations and hotels are separate
// attribute categories mapped onto the same Route Overlay, exactly the
// content-provider model the paper describes.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"road"
	"road/internal/dataset"
	"road/internal/graph"
)

const (
	busStation int32 = 1
	hotel      int32 = 2
)

func main() {
	// A San-Francisco-class street grid, scaled to a city district.
	// Weights come out of the generator as distances; reinterpret them as
	// walking minutes (the framework is metric-agnostic).
	spec := dataset.Scaled(dataset.SF(), 0.02)
	g := dataset.MustGenerate(spec)
	fmt.Printf("city district: %d intersections, %d street segments\n",
		g.NumNodes(), g.NumEdges())

	objects := graph.NewObjectSet(g)
	rng := rand.New(rand.NewSource(42))
	place := func(n int, attr int32) {
		for i := 0; i < n; i++ {
			e := graph.EdgeID(rng.Intn(g.NumEdges()))
			objects.MustAdd(e, rng.Float64()*g.Weight(e), attr)
		}
	}
	place(25, busStation)
	place(40, hotel)

	db, err := road.OpenWithObjects(road.FromGraph(g), objects, road.Options{StorePaths: true})
	if err != nil {
		log.Fatal(err)
	}

	// The conference venue sits at a random intersection. Every query
	// below runs under a request deadline through the v1 Store API — the
	// discipline a trip-planning service would apply per request.
	venue := dataset.RandomNodes(g, 1, 7)[0]
	fmt.Printf("conference venue at intersection %d\n\n", venue)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()

	// Q1: nearest bus station.
	q1, stats, err := db.KNNContext(ctx, road.NewKNN(venue, 1, road.WithAttr(busStation)))
	if err != nil {
		log.Fatal(err)
	}
	if len(q1) == 0 {
		log.Fatal("no bus station reachable")
	}
	fmt.Printf("Q1: nearest bus station is object %d, %.1f minutes away\n",
		q1[0].Object.ID, q1[0].Dist)
	fmt.Printf("    search settled %d intersections, bypassed %d regions\n",
		stats.NodesPopped, stats.RnetsBypassed)
	if p, _, err := db.PathToContext(ctx, road.NewPath(venue, q1[0].Object.ID)); err == nil {
		fmt.Printf("    walking route: %d intersections", len(p.Nodes))
		if len(p.Nodes) > 6 {
			fmt.Printf(" (%v ... %v)", p.Nodes[:3], p.Nodes[len(p.Nodes)-3:])
		} else {
			fmt.Printf(" %v", p.Nodes)
		}
		fmt.Println()
	}
	fmt.Println()

	// Q2: hotels within a 10-minute walk.
	q2, stats, err := db.WithinContext(ctx, road.NewWithin(venue, 10, road.WithAttr(hotel)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q2: %d hotels within a 10-minute walk:\n", len(q2))
	for _, hit := range q2 {
		fmt.Printf("    hotel %d at %.1f min\n", hit.Object.ID, hit.Dist)
	}
	if len(q2) == 0 {
		fmt.Println("    (none — try the 3 nearest instead)")
		for _, hit := range first3(ctx, db, venue) {
			fmt.Printf("    hotel %d at %.1f min\n", hit.Object.ID, hit.Dist)
		}
	}
	fmt.Printf("    search settled %d intersections, bypassed %d regions\n",
		stats.NodesPopped, stats.RnetsBypassed)
}

func first3(ctx context.Context, db *road.DB, venue road.NodeID) []road.Result {
	res, _, _ := db.KNNContext(ctx, road.NewKNN(venue, 3, road.WithAttr(hotel)))
	return res
}
