package road

import "road/internal/apierr"

// Typed sentinel errors of the v1 API. Every error a Store returns wraps
// one of these (test with errors.Is); context-derived failures
// additionally wrap the context's own error, so
// errors.Is(err, context.DeadlineExceeded) works too.
var (
	// ErrCanceled marks a query aborted by its context. The partial
	// result returned with it is a valid prefix of the full answer and
	// Stats.Truncated is set.
	ErrCanceled = apierr.ErrCanceled
	// ErrBudgetExhausted marks a query stopped by its traversal budget.
	ErrBudgetExhausted = apierr.ErrBudgetExhausted
	// ErrInvalidRequest marks a structurally invalid request.
	ErrInvalidRequest = apierr.ErrInvalidRequest
	// ErrNoSuchNode marks a query from a non-existent intersection.
	ErrNoSuchNode = apierr.ErrNoSuchNode
	// ErrNoSuchEdge marks an operation on a non-existent road segment.
	ErrNoSuchEdge = apierr.ErrNoSuchEdge
	// ErrNoSuchObject marks an operation on a non-existent object.
	ErrNoSuchObject = apierr.ErrNoSuchObject
	// ErrEdgeClosed marks an operation that needs a live road segment
	// applied to a closed one.
	ErrEdgeClosed = apierr.ErrEdgeClosed
	// ErrEdgeNotClosed marks a reopen of a segment that is not closed.
	ErrEdgeNotClosed = apierr.ErrEdgeNotClosed
	// ErrAttrMismatch marks a path query whose target object fails the
	// attribute predicate.
	ErrAttrMismatch = apierr.ErrAttrMismatch
	// ErrUnreachable marks a path query whose target cannot be reached.
	ErrUnreachable = apierr.ErrUnreachable
	// ErrPathsNotStored marks DB.PathTo without Options.StorePaths.
	ErrPathsNotStored = apierr.ErrPathsNotStored
	// ErrCrossShardRoad marks an AddRoad whose endpoints share no shard.
	ErrCrossShardRoad = apierr.ErrCrossShardRoad
	// ErrShardUnavailable marks a call that needed an out-of-process
	// shard host currently unreachable or marked down (RemoteDB only).
	// The serving layer answers it with HTTP 503.
	ErrShardUnavailable = apierr.ErrShardUnavailable
)
