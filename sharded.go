package road

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"road/internal/core"
	"road/internal/graph"
	"road/internal/rnet"
	"road/internal/shard"
	"road/internal/snapshot"
)

// ShardedDB is a ROAD database split into K region shards, each a full
// independent index over one partition-aligned slice of the network, with
// a query router dispatching to the owning shard and expanding across
// shard boundaries through recorded border-node distances. It mirrors DB:
// the same global node, edge and object IDs, the same query and
// maintenance surface, the same persistence model — but with per-shard
// epochs, snapshots and write-ahead journals, the deployment seam that
// lets large networks serve heavy traffic (and, later, lets shards move
// out-of-process).
//
// Differences from DB worth knowing: PathTo works without
// Options.StorePaths (cross-shard routes are assembled from per-shard
// Dijkstra legs), and AddRoad requires both endpoints to share a shard —
// shard boundaries are fixed at build time, so a road bridging two shards
// that share neither endpoint is rejected.
type ShardedDB struct {
	r *shard.Router

	// Per-shard persistence state, indexed by shard ID.
	journals     []*snapshot.Journal
	baseSeqs     []uint64
	lastSnapSeqs []uint64

	// sess serves the DB-level convenience queries (single-threaded,
	// like DB's own methods); concurrent callers use NewSession.
	sess *shard.Session
}

// OpenSharded builds a ShardedDB over the builder's network, split into
// the given number of shards (a power of two ≥ 2). The network is
// adopted; further mutation must go through ShardedDB methods.
func OpenSharded(b *NetworkBuilder, opts Options, shards int) (*ShardedDB, error) {
	objects := graph.NewObjectSet(b.g)
	return openSharded(b.g, objects, opts, shards)
}

// OpenShardedWithObjects builds a ShardedDB with a pre-populated object
// set (bound to the builder's graph). Objects keep their IDs.
func OpenShardedWithObjects(b *NetworkBuilder, objects *graph.ObjectSet, opts Options, shards int) (*ShardedDB, error) {
	if objects.Graph() != b.g {
		return nil, fmt.Errorf("road: object set bound to a different network")
	}
	return openSharded(b.g, objects, opts, shards)
}

func openSharded(g *graph.Graph, objects *graph.ObjectSet, opts Options, shards int) (*ShardedDB, error) {
	if g.NumNodes() < 2 {
		return nil, fmt.Errorf("road: network needs at least 2 nodes, has %d", g.NumNodes())
	}
	var rcfg rnet.Config
	if opts.Fanout != 0 || opts.Levels != 0 {
		// Explicit shape: base the unset half on a per-shard-sized default.
		rcfg = rnet.DefaultConfig(g.NumNodes() / shards)
		if opts.Fanout != 0 {
			rcfg.Fanout = opts.Fanout
		}
		if opts.Levels != 0 {
			rcfg.Levels = opts.Levels
		}
	}
	// StorePaths is deliberately not forwarded: the router reconstructs
	// cross-shard routes from per-shard Dijkstra legs and never expands
	// stored shortcut waypoints.
	rcfg.Seed = opts.Seed
	cfg := core.Config{Rnet: rcfg, Abstract: opts.Abstract}
	if opts.DisableIOSim {
		cfg.BufferPages = -1
	}
	r, err := shard.Build(g, objects, shard.Options{
		Shards: shards,
		Seed:   opts.Seed,
		Core:   cfg,
	})
	if err != nil {
		return nil, err
	}
	return newShardedDB(r), nil
}

func newShardedDB(r *shard.Router) *ShardedDB {
	k := r.NumShards()
	return &ShardedDB{
		r:            r,
		journals:     make([]*snapshot.Journal, k),
		baseSeqs:     make([]uint64, k),
		lastSnapSeqs: make([]uint64, k),
	}
}

// Router exposes the underlying shard router for advanced use (serving
// layers, benchmark harnesses).
func (db *ShardedDB) Router() *shard.Router { return db.r }

// NumShards returns the number of region shards.
func (db *ShardedDB) NumShards() int { return db.r.NumShards() }

// Epoch returns the database's maintenance epoch: the sum of the shard
// epochs, bumped by every successful mutating call. See DB.Epoch.
func (db *ShardedDB) Epoch() uint64 { return db.r.Epoch() }

// IndexSizeBytes estimates total index storage across all shards.
func (db *ShardedDB) IndexSizeBytes() int64 { return db.r.IndexSizeBytes() }

// ShardInfos reports per-shard size, epoch and load counters.
func (db *ShardedDB) ShardInfos() []shard.Info { return db.r.Infos() }

// HomeShardOf returns the shard holding node n, or -1 for an unknown
// node. Safe on the query hot path (the topology is fixed after build).
func (db *ShardedDB) HomeShardOf(n NodeID) int { return int(db.r.HomeOf(n)) }

// NumNodes returns the global intersection count (fixed at build time).
func (db *ShardedDB) NumNodes() int { return db.r.Graph().NumNodes() }

// NumRoads returns the global road-segment count (including closed
// ones). Safe to call concurrently with queries and mutations.
func (db *ShardedDB) NumRoads() int { return db.r.NumEdges() }

// NumObjects returns the number of live objects across all shards. Safe
// to call concurrently with queries and mutations.
func (db *ShardedDB) NumObjects() int { return db.r.NumObjects() }

// --- Queries (single-threaded convenience, mirroring DB) ---

func (db *ShardedDB) session() *shard.Session {
	if db.sess == nil {
		db.sess = db.r.NewSession()
	}
	return db.sess
}

// ShardedSession is an independent cross-shard read-only query context;
// any number may query concurrently. The same discipline as Session
// applies: sessions must not overlap with maintenance calls, and the
// internal/server subsystem enforces exactly that when serving traffic.
type ShardedSession struct {
	s  *shard.Session
	db *ShardedDB
}

// NewSession returns a concurrent cross-shard query context.
func (db *ShardedDB) NewSession() *ShardedSession {
	return &ShardedSession{s: db.r.NewSession(), db: db}
}

// Epoch returns the ShardedDB's maintenance epoch as seen by this session.
func (s *ShardedSession) Epoch() uint64 { return s.s.Epoch() }

// --- Maintenance (write-ahead journaled per shard) ---
//
// Every mutation runs through Router.Mutate: the op is encoded (IDs
// allocated) under the router's mutation lock, write-ahead logged to its
// shard's journal inside the owning shard's write lock, then applied
// through the same router code path journal replay re-runs on recovery.
// Because synchronization is internal (see Exclusive), mutations MAY
// overlap queries: a mutation stalls only readers of its own shard.

// journalAndApply write-ahead logs op to its shard's journal (when
// attached) and applies it through the router — the exact code path
// journal replay re-runs on recovery. Runs inside Mutate's critical
// section, under the owning shard's write lock.
func (db *ShardedDB) journalAndApply(sid shard.ID, op snapshot.Op) error {
	if j := db.journals[sid]; j != nil {
		if _, err := j.Append(op); err != nil {
			return fmt.Errorf("road: journaling %s: %w", op.Kind, err)
		}
	}
	//roadvet:ignore append is conditional by design: a ShardedDB without attached journals is ephemeral and applies directly
	return db.r.ApplyOp(sid, op, true)
}

// applyOp encodes, journals and applies one mutation under the router's
// per-shard locking; the encoded op is returned so callers can report
// the global IDs it allocated.
func (db *ShardedDB) applyOp(encode func() (shard.ID, snapshot.Op, error)) (snapshot.Op, error) {
	return db.r.Mutate(encode, db.journalAndApply)
}

// AddObject places an object on road e at distance offset from the road's
// U endpoint. See DB.AddObject.
func (db *ShardedDB) AddObject(e EdgeID, offset float64, attr int32) (Object, error) {
	var obj Object
	_, err := db.r.Mutate(func() (shard.ID, snapshot.Op, error) {
		return db.r.EncodeInsertObject(e, offset, attr)
	}, func(sid shard.ID, op snapshot.Op) error {
		if err := db.journalAndApply(sid, op); err != nil {
			return err
		}
		// Resolve the inserted object's global form while the shard
		// write lock still excludes a concurrent deletion of it.
		o, ok := db.r.ObjectInShard(sid, op.Object)
		if !ok {
			return fmt.Errorf("road: object %d missing after insert: %w", op.Object, ErrNoSuchObject)
		}
		obj = o
		return nil
	})
	if err != nil {
		return Object{}, err
	}
	return obj, nil
}

// RemoveObject deletes an object.
func (db *ShardedDB) RemoveObject(id ObjectID) error {
	_, err := db.applyOp(func() (shard.ID, snapshot.Op, error) {
		return db.r.EncodeDeleteObject(id)
	})
	return err
}

// SetObjectAttr changes an object's attribute category.
func (db *ShardedDB) SetObjectAttr(id ObjectID, attr int32) error {
	_, err := db.applyOp(func() (shard.ID, snapshot.Op, error) {
		return db.r.EncodeSetObjectAttr(id, attr)
	})
	return err
}

// SetRoadDistance changes a road's distance metric; the owning shard's
// index, border distance table and nearest-border array repair
// themselves incrementally (filter-and-refresh).
func (db *ShardedDB) SetRoadDistance(e EdgeID, dist float64) error {
	_, err := db.applyOp(func() (shard.ID, snapshot.Op, error) {
		return db.r.EncodeSetDistance(e, dist)
	})
	return err
}

// AddRoad inserts a new road segment between existing intersections. Both
// endpoints must be present in a common shard (always true for roads that
// do not bridge two previously unconnected regions).
func (db *ShardedDB) AddRoad(u, v NodeID, dist float64) (EdgeID, error) {
	op, err := db.applyOp(func() (shard.ID, snapshot.Op, error) {
		return db.r.EncodeAddRoad(u, v, dist)
	})
	if err != nil {
		return NoEdge, err
	}
	return op.Edge, nil
}

// CloseRoad removes a road segment (objects on it are dropped).
func (db *ShardedDB) CloseRoad(e EdgeID) error {
	_, err := db.applyOp(func() (shard.ID, snapshot.Op, error) {
		return db.r.EncodeClose(e)
	})
	return err
}

// ReopenRoad restores a previously closed road segment.
func (db *ShardedDB) ReopenRoad(e EdgeID) error {
	_, err := db.applyOp(func() (shard.ID, snapshot.Op, error) {
		return db.r.EncodeReopen(e)
	})
	return err
}

// Exclusive runs fn with every internal lock held: no query or mutation
// overlaps it. It satisfies road.Synchronized; serving layers use it for
// whole-store operations that need one consistent multi-shard view, such
// as SaveSnapshotFiles followed by CompactJournals.
func (db *ShardedDB) Exclusive(fn func() error) error { return db.r.Exclusive(fn) }

// --- Persistence (per-shard snapshots + journals, one manifest) ---

// ShardSnapshotPath names shard i's snapshot file under a prefix.
func ShardSnapshotPath(prefix string, i int) string { return fmt.Sprintf("%s.%d", prefix, i) }

// ShardManifestPath names the manifest file under a prefix.
func ShardManifestPath(prefix string) string { return prefix + ".manifest" }

// ShardJournalPath names shard i's write-ahead journal under a prefix.
func ShardJournalPath(prefix string, i int) string { return fmt.Sprintf("%s.%d", prefix, i) }

// SaveSnapshotFiles persists the sharded database under the given path
// prefix: one ordinary snapshot per shard (prefix.0 … prefix.K-1, each in
// shard-local coordinates with that shard's journal watermark) plus a
// manifest (prefix.manifest) mapping local IDs back to the global
// namespace. The caller must exclude concurrent mutations for the whole
// save, so the set is consistent. The save is two-phase: every file is
// fully written and synced under a staging name first, then the set is
// committed by renames — shrinking the window in which a crash could
// leave mixed-generation files (which Reassemble detects and refuses)
// from the whole multi-file write to the final rename loop.
func (db *ShardedDB) SaveSnapshotFiles(prefix string) error {
	const staged = ".saving"
	seqs := make([]uint64, db.r.NumShards())
	for i := 0; i < db.r.NumShards(); i++ {
		seqs[i] = db.shardSeq(i)
		if err := snapshot.SaveFile(db.r.Shard(i).F, seqs[i], ShardSnapshotPath(prefix, i)+staged); err != nil {
			return fmt.Errorf("road: shard %d snapshot: %w", i, err)
		}
	}
	if err := writeManifestFile(ShardManifestPath(prefix)+staged, db.r.Manifest()); err != nil {
		return err
	}
	for i := 0; i < db.r.NumShards(); i++ {
		p := ShardSnapshotPath(prefix, i)
		if err := os.Rename(p+staged, p); err != nil {
			return fmt.Errorf("road: committing shard %d snapshot: %w", i, err)
		}
	}
	if err := os.Rename(ShardManifestPath(prefix)+staged, ShardManifestPath(prefix)); err != nil {
		return fmt.Errorf("road: committing shard manifest: %w", err)
	}
	copy(db.lastSnapSeqs, seqs)
	return nil
}

func (db *ShardedDB) shardSeq(i int) uint64 {
	if j := db.journals[i]; j != nil {
		return j.LastSeq()
	}
	return db.baseSeqs[i]
}

func writeManifestFile(path string, m *shard.Manifest) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(m); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// OpenShardedSnapshotFiles reopens a sharded database previously saved
// with SaveSnapshotFiles: O(load) per shard instead of O(build), with all
// global IDs, per-shard epochs and journal watermarks restored. Cross-
// shard routing state (border distance tables) is recomputed from the
// loaded shards.
func OpenShardedSnapshotFiles(prefix string) (*ShardedDB, error) {
	mf, err := os.Open(ShardManifestPath(prefix))
	if err != nil {
		return nil, err
	}
	var m shard.Manifest
	err = json.NewDecoder(mf).Decode(&m)
	mf.Close()
	if err != nil {
		return nil, fmt.Errorf("road: reading shard manifest: %w", err)
	}
	if m.Shards < 1 {
		return nil, fmt.Errorf("road: shard manifest names %d shards", m.Shards)
	}
	frameworks := make([]*core.Framework, m.Shards)
	baseSeqs := make([]uint64, m.Shards)
	for i := 0; i < m.Shards; i++ {
		f, lastSeq, err := snapshot.LoadFile(ShardSnapshotPath(prefix, i))
		if err != nil {
			return nil, fmt.Errorf("road: shard %d snapshot: %w", i, err)
		}
		frameworks[i] = f
		baseSeqs[i] = lastSeq
	}
	r, err := shard.Reassemble(frameworks, &m)
	if err != nil {
		return nil, err
	}
	db := newShardedDB(r)
	copy(db.baseSeqs, baseSeqs)
	copy(db.lastSnapSeqs, baseSeqs)
	return db, nil
}

// OpenShardJournals opens (or creates) one write-ahead journal per shard
// under the given path prefix. Pass the result to ReplayJournals and then
// AttachJournals. syncEach forwards to Journal.SyncEachAppend.
func (db *ShardedDB) OpenShardJournals(prefix string, syncEach bool) ([]*Journal, error) {
	journals := make([]*Journal, db.r.NumShards())
	for i := range journals {
		j, err := OpenJournal(ShardJournalPath(prefix, i))
		if err != nil {
			for _, open := range journals[:i] {
				open.Close()
			}
			return nil, fmt.Errorf("road: shard %d journal: %w", i, err)
		}
		j.SyncEachAppend = syncEach
		journals[i] = j
	}
	return journals, nil
}

// ReplayJournals applies, per shard, every journal entry the shard's base
// state does not already include, through the same router code path live
// maintenance uses — so global edge and object IDs assigned after the
// snapshot are reconstructed exactly. It returns the number of ops
// applied. Like DB.ReplayJournal, a returned *snapshot.OpError is an
// expected per-op failure (the op failed identically live; replay
// completed); any other non-nil error is fatal and the database must not
// be treated as recovered.
func (db *ShardedDB) ReplayJournals(journals []*Journal) (int, error) {
	if len(journals) != db.r.NumShards() {
		return 0, fmt.Errorf("road: %d journals for %d shards: %w", len(journals), db.r.NumShards(), ErrInvalidRequest)
	}
	applied := 0
	var lastOpErr error
	dirty := false
	for i, j := range journals {
		if j == nil {
			continue
		}
		if err := j.CheckBase(db.r.Shard(i).F, db.baseSeqs[i]); err != nil {
			return applied, fmt.Errorf("road: shard %d: %w", i, err)
		}
		err := j.Entries(db.baseSeqs[i], func(seq uint64, op snapshot.Op) error {
			dirty = true
			if err := db.r.ApplyOp(i, op, false); err != nil {
				if errors.Is(err, shard.ErrIntegrity) {
					return err // fatal: bookkeeping would corrupt
				}
				lastOpErr = &snapshot.OpError{Seq: seq, Op: op, Err: err}
				return nil
			}
			applied++
			return nil
		})
		if err != nil {
			return applied, fmt.Errorf("road: shard %d journal replay: %w", i, err)
		}
		if last := j.LastSeq(); last > db.baseSeqs[i] {
			db.baseSeqs[i] = last
		}
	}
	if dirty {
		db.r.RefreshAll()
	}
	return applied, lastOpErr
}

// AttachJournals directs every subsequent maintenance op through its
// shard's journal before it is applied (write-ahead logging). Sequence
// counters are fast-forwarded to each shard's watermark and fresh
// journals are stamped with their shard's fingerprint, mirroring
// DB.AttachJournal per shard.
func (db *ShardedDB) AttachJournals(journals []*Journal) error {
	if len(journals) != db.r.NumShards() {
		return fmt.Errorf("road: %d journals for %d shards: %w", len(journals), db.r.NumShards(), ErrInvalidRequest)
	}
	for i, j := range journals {
		if j == nil {
			continue
		}
		j.EnsureSeq(db.baseSeqs[i])
		if last := j.LastSeq(); last > db.baseSeqs[i] {
			db.baseSeqs[i] = last
		}
		if err := j.BindBase(db.r.Shard(i).F, db.baseSeqs[i]); err != nil {
			return fmt.Errorf("road: shard %d: %w", i, err)
		}
	}
	db.journals = append([]*snapshot.Journal(nil), journals...)
	return nil
}

// CompactJournals rotates every attached shard journal, dropping entries
// the most recent snapshot save already includes. See DB.CompactJournal.
func (db *ShardedDB) CompactJournals() error {
	for i, j := range db.journals {
		if j == nil || db.lastSnapSeqs[i] == 0 {
			continue
		}
		if err := j.Rotate(db.r.Shard(i).F, db.lastSnapSeqs[i]); err != nil {
			return fmt.Errorf("road: shard %d: %w", i, err)
		}
	}
	return nil
}

// JournalSeq sums the last journal sequence numbers incorporated in each
// shard's state — a monotonic recovery watermark for monitoring, the
// sharded analogue of DB.JournalSeq.
func (db *ShardedDB) JournalSeq() uint64 {
	var sum uint64
	for i := 0; i < db.r.NumShards(); i++ {
		sum += db.shardSeq(i)
	}
	return sum
}

// JournalSizeBytes sums the attached shard journals' file sizes — the
// quantity roadd's -journal-max-bytes auto-snapshot trigger watches.
func (db *ShardedDB) JournalSizeBytes() int64 {
	var sum int64
	for _, j := range db.journals {
		if j != nil {
			sum += j.Size()
		}
	}
	return sum
}

// CloseJournals closes every attached shard journal.
func (db *ShardedDB) CloseJournals() error {
	var firstErr error
	for _, j := range db.journals {
		if j == nil {
			continue
		}
		if err := j.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
