package road_test

import (
	"context"
	"errors"
	"fmt"
	"log"

	"road"
)

// buildTown assembles a deterministic 6-intersection chain with three
// points of interest, shared by the runnable examples.
func buildTown() (*road.DB, []road.NodeID, []road.EdgeID) {
	b := road.NewNetworkBuilder()
	var nodes []road.NodeID
	for i := 0; i < 6; i++ {
		nodes = append(nodes, b.AddNode(float64(i), 0))
	}
	var edges []road.EdgeID
	for i := 0; i < 5; i++ {
		e, err := b.AddRoad(nodes[i], nodes[i+1], 1)
		if err != nil {
			log.Fatal(err)
		}
		edges = append(edges, e)
	}
	db, err := road.Open(b, road.Options{Fanout: 2, Levels: 2})
	if err != nil {
		log.Fatal(err)
	}
	db.AddObject(edges[0], 0.5, 1) // café half a block out
	db.AddObject(edges[2], 0.5, 2) // pharmacy mid-town
	db.AddObject(edges[4], 0.5, 1) // café at the far end
	return db, nodes, edges
}

// Example_knn runs a typed k-nearest-neighbour request through the
// Store v1 API.
func Example_knn() {
	db, nodes, _ := buildTown()
	ctx := context.Background()

	hits, _, err := db.KNNContext(ctx, road.NewKNN(nodes[0], 2, road.WithAttr(1)))
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range hits {
		fmt.Printf("café %d at distance %.1f\n", h.Object.ID, h.Dist)
	}
	// Output:
	// café 0 at distance 0.5
	// café 2 at distance 4.5
}

// Example_within runs a range request and inspects the traversal stats.
func Example_within() {
	db, nodes, _ := buildTown()
	ctx := context.Background()

	hits, stats, err := db.WithinContext(ctx, road.NewWithin(nodes[0], 3.0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d objects within 3 blocks (truncated=%v)\n", len(hits), stats.Truncated)
	for _, h := range hits {
		fmt.Printf("object %d at %.1f\n", h.Object.ID, h.Dist)
	}
	// Output:
	// 2 objects within 3 blocks (truncated=false)
	// object 0 at 0.5
	// object 1 at 2.5
}

// Example_maintenance drives network maintenance through the road.Store
// interface — the same calls work on a DB and a ShardedDB (where each
// mutation repairs the owning shard's border tables incrementally and
// stalls only that shard's readers): a road closure reroutes queries at
// once, reopening restores them, and every successful mutation advances
// the epoch fence that invalidates derived state.
func Example_maintenance() {
	db, nodes, edges := buildTown()
	ctx := context.Background()
	var store road.Store = db
	epoch0 := store.Epoch()

	nearestCafe := func(label string) {
		hits, _, err := store.KNNContext(ctx, road.NewKNN(nodes[3], 1, road.WithAttr(1)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: café %d at distance %.1f\n", label, hits[0].Object.ID, hits[0].Dist)
	}

	nearestCafe("before")
	if err := store.CloseRoad(edges[3]); err != nil { // the block toward the far-end café
		log.Fatal(err)
	}
	nearestCafe("road closed")
	fmt.Printf("closed roads reject re-weighting: %v\n",
		errors.Is(store.SetRoadDistance(edges[3], 2), road.ErrEdgeClosed))
	if err := store.ReopenRoad(edges[3]); err != nil {
		log.Fatal(err)
	}
	nearestCafe("reopened")
	fmt.Printf("epoch advanced by %d\n", store.Epoch()-epoch0)
	// Output:
	// before: café 2 at distance 1.5
	// road closed: café 0 at distance 2.5
	// closed roads reject re-weighting: true
	// reopened: café 2 at distance 1.5
	// epoch advanced by 2
}

// Example_batch answers several requests on one session at one epoch —
// the amortized entry point load generators and the HTTP layer use.
func Example_batch() {
	db, nodes, _ := buildTown()
	ctx := context.Background()

	knn := road.NewKNN(nodes[0], 1)
	within := road.NewWithin(nodes[5], 1.0)
	bad := road.NewKNN(road.NodeID(999), 1) // typed per-entry failure

	answers := db.Query(ctx, []road.Request{{KNN: &knn}, {Within: &within}, {KNN: &bad}})
	fmt.Printf("nearest to home: object %d\n", answers[0].Results[0].Object.ID)
	fmt.Printf("near the far end: %d object(s)\n", len(answers[1].Results))
	fmt.Printf("bad entry is typed: %v\n", errors.Is(answers[2].Err, road.ErrNoSuchNode))
	fmt.Printf("one epoch for the whole batch: %v\n", answers[0].Epoch == answers[2].Epoch)
	// Output:
	// nearest to home: object 0
	// near the far end: 1 object(s)
	// bad entry is typed: true
	// one epoch for the whole batch: true
}
